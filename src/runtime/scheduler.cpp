#include "runtime/scheduler.h"

#include <algorithm>
#include <exception>

#include "common/error.h"
#include "pgql/normalize.h"
#include "rpq/cache_key.h"

namespace rpqd {

namespace detail {

/// Shared state of one submission, owned jointly by the ticket(s) and
/// the scheduler. Admission fields (`outcome`, `reject`) are fixed at
/// submit time and immutable afterwards; the completion fields are
/// guarded by `m`.
struct QueryJob {
  std::uint64_t id = 0;
  std::shared_ptr<const ExecPlan> plan;
  bool profile = false;
  /// Snapshot pinned at submit (DESIGN.md §12): the query executes on
  /// this graph version no matter how many updates land while it queues,
  /// and its epoch keys the result-cache probe.
  std::shared_ptr<const GraphSnapshot> snapshot;
  /// Leader only: the plan's label footprint, for update-driven
  /// result-cache eviction of the entry this job may admit.
  ResultCacheScope scope;
  /// The probe raced an update (stale epoch): execute uncached.
  bool cache_bypass = false;
  AdmissionOutcome outcome = AdmissionOutcome::kRejected;
  AdmissionReject reject = AdmissionReject::kNone;
  /// Created at submit so a cancel can never miss the run: before
  /// dispatch it records a pending reason the engine applies on attach.
  /// Null for kCachedHit / kCoalesced tickets — they never run, so there
  /// is nothing to cancel.
  std::shared_ptr<RunControl> run_control;
  Stopwatch queued_at;    // started at submit
  double queue_ms = 0.0;  // stamped at dispatch
  // Result cache (DESIGN.md §11). A follower holds the leader's flight;
  // a leader holds its own flight plus the cache key to complete it.
  std::shared_ptr<ResultCache::Flight> flight;       // kCoalesced
  std::shared_ptr<ResultCache::Flight> lead_flight;  // leader of a flight
  std::string cache_text;
  bool cache_profile = false;

  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  QueryResult result;
  std::exception_ptr error;  // engine invariant failures, rethrown by await
};

}  // namespace detail

using detail::QueryJob;

const char* to_string(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted: return "admitted";
    case AdmissionOutcome::kQueued: return "queued";
    case AdmissionOutcome::kRejected: return "rejected";
    case AdmissionOutcome::kCachedHit: return "cached-hit";
    case AdmissionOutcome::kCoalesced: return "coalesced";
  }
  return "?";
}

const char* to_string(AdmissionReject reject) {
  switch (reject) {
    case AdmissionReject::kNone: return "none";
    case AdmissionReject::kQueueFull: return "queue-full";
    case AdmissionReject::kContextBudget: return "context-budget";
    case AdmissionReject::kReachIndexBudget: return "reach-index-budget";
    case AdmissionReject::kShutdown: return "shutdown";
  }
  return "?";
}

std::uint64_t QueryTicket::id() const { return job_ != nullptr ? job_->id : 0; }

AdmissionOutcome QueryTicket::admission() const {
  return job_ != nullptr ? job_->outcome : AdmissionOutcome::kRejected;
}

AdmissionReject QueryTicket::reject_reason() const {
  return job_ != nullptr ? job_->reject : AdmissionReject::kNone;
}

QueryScheduler::QueryScheduler(DistributedEngine* engine,
                               SchedulerConfig config,
                               ResultCache* result_cache)
    : engine_(engine), config_(config), result_cache_(result_cache) {
  slots_ = std::max(1u, config_.max_inflight);
  // Budget-based admission at its coarsest: when the engine carries a
  // per-query budget, cap the slot count so a full wave of such queries
  // fits under the global ceiling; a per-query budget that can never fit
  // zeroes the slots and every submission is rejected with that reason.
  const EngineConfig ec = engine_->config_snapshot();
  const auto cap_slots = [this](std::uint64_t global, std::uint64_t per_query,
                                AdmissionReject why) {
    if (global == 0 || per_query == 0) return;
    const std::uint64_t fit = global / per_query;
    if (fit == 0) {
      slots_ = 0;
      if (zero_slots_reason_ == AdmissionReject::kNone) {
        zero_slots_reason_ = why;
      }
    } else if (fit < slots_) {
      slots_ = static_cast<unsigned>(fit);
    }
  };
  cap_slots(config_.global_max_live_contexts, ec.max_live_contexts,
            AdmissionReject::kContextBudget);
  cap_slots(config_.global_reach_index_max_bytes, ec.reach_index_max_bytes,
            AdmissionReject::kReachIndexBudget);

  dispatchers_.reserve(slots_);
  for (unsigned i = 0; i < slots_; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_main(); });
  }
}

QueryScheduler::~QueryScheduler() {
  std::vector<std::shared_ptr<QueryJob>> dropped;
  std::vector<std::shared_ptr<QueryJob>> live;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    dropped.assign(queue_.begin(), queue_.end());
    queue_.clear();
    stats_.cancelled_while_queued += dropped.size();
    live = running_;
  }
  for (const auto& job : dropped) {
    QueryResult result;
    result.aborted = true;
    result.abort_reason = AbortReason::kUserCancel;
    fulfill(*job, std::move(result));
  }
  // Cooperative fast shutdown: in-flight runs drain through the abort
  // protocol instead of holding the destructor for their full runtime.
  for (const auto& job : live) {
    job->run_control->cancel(AbortReason::kUserCancel);
  }
  work_.notify_all();
  for (auto& t : dispatchers_) t.join();
}

QueryTicket QueryScheduler::submit(std::string_view pgql) {
  bool profile = false;
  std::shared_ptr<const ExecPlan> plan = engine_->compile(pgql, &profile);

  auto job = std::make_shared<QueryJob>();
  job->plan = std::move(plan);
  job->profile = profile;
  // Pin the snapshot at submission (DESIGN.md §12), BEFORE the cache
  // probe — the probe's epoch is the coherence handshake: the cache
  // aborts loudly if the pin is newer than its last invalidation.
  job->snapshot = engine_->current_snapshot();

  if (result_cache_ != nullptr) {
    // Result-cache lookup AFTER compile (parse errors throw like the
    // uncached path, never touching the cache) and BEFORE admission (a
    // hit or coalesce consumes neither a slot nor a queue position).
    pgql::NormalizedQuery norm = pgql::normalize_query(pgql);
    const bool key_profile =
        profile || norm.profile || engine_->config_snapshot().profile;
    ResultCache::Lookup look =
        result_cache_->acquire(norm.text, key_profile, job->snapshot->epoch());
    if (look.role == ResultCache::Role::kBypass) {
      // An update published between the pin and the probe. Re-pin once
      // and retry; if another update races the retry too, run this
      // submission uncached rather than loop.
      job->snapshot = engine_->current_snapshot();
      look = result_cache_->acquire(norm.text, key_profile,
                                    job->snapshot->epoch());
    }
    if (look.role == ResultCache::Role::kBypass) {
      job->cache_bypass = true;
    } else if (look.role == ResultCache::Role::kHit) {
      {
        std::lock_guard lock(mutex_);
        job->id = next_id_++;
        ++stats_.submitted;
        ++stats_.cache_hits;
      }
      job->outcome = AdmissionOutcome::kCachedHit;
      look.result.stats.result_cache_hit = true;
      look.result.stats.queue_ms = 0.0;
      fulfill(*job, std::move(look.result));
      return QueryTicket(std::move(job));
    } else if (look.role == ResultCache::Role::kFollower) {
      {
        std::lock_guard lock(mutex_);
        job->id = next_id_++;
        ++stats_.submitted;
        ++stats_.cache_coalesced;
      }
      job->outcome = AdmissionOutcome::kCoalesced;
      job->flight = std::move(look.flight);
      return QueryTicket(std::move(job));
    } else {
      // Leader: this job must complete the flight whatever happens to it
      // (dispatch, rejection, cancel, shutdown) — fulfill()/fail() do.
      job->lead_flight = std::move(look.flight);
      job->cache_text = std::move(norm.text);
      job->cache_profile = key_profile;
      job->scope = result_cache_scope(*job->plan);
    }
  }
  job->run_control = std::make_shared<RunControl>();

  AdmissionReject reject = AdmissionReject::kNone;
  {
    std::lock_guard lock(mutex_);
    job->id = next_id_++;
    ++stats_.submitted;
    if (job->cache_bypass) ++stats_.cache_bypassed;
    if (stopping_) {
      reject = AdmissionReject::kShutdown;
    } else if (slots_ == 0) {
      reject = zero_slots_reason_;
    } else if (busy_ + queue_.size() >= slots_ + config_.max_queued) {
      reject = AdmissionReject::kQueueFull;
    }
    if (reject == AdmissionReject::kNone) {
      job->outcome = busy_ + queue_.size() < slots_
                         ? AdmissionOutcome::kAdmitted
                         : AdmissionOutcome::kQueued;
      if (job->outcome == AdmissionOutcome::kAdmitted) {
        ++stats_.admitted;
      } else {
        ++stats_.queued;
      }
      queue_.push_back(job);
    } else {
      job->outcome = AdmissionOutcome::kRejected;
      job->reject = reject;
      switch (reject) {
        case AdmissionReject::kQueueFull: ++stats_.rejected_queue_full; break;
        case AdmissionReject::kContextBudget:
          ++stats_.rejected_context_budget;
          break;
        case AdmissionReject::kReachIndexBudget:
          ++stats_.rejected_reach_index_budget;
          break;
        case AdmissionReject::kShutdown: ++stats_.rejected_shutdown; break;
        case AdmissionReject::kNone: break;
      }
    }
  }
  if (reject != AdmissionReject::kNone) {
    // Rejected submissions never run: await() observes a typed
    // admission-reject result immediately.
    QueryResult result;
    result.aborted = true;
    result.abort_reason = AbortReason::kAdmissionReject;
    fulfill(*job, std::move(result));
  } else {
    work_.notify_one();
  }
  return QueryTicket(std::move(job));
}

QueryResult QueryScheduler::await(const QueryTicket& ticket) {
  engine_check(ticket.valid(), "await on an empty QueryTicket");
  QueryJob& job = *ticket.job_;
  if (job.flight != nullptr) {
    // Follower: block on the leader's flight (this thread holds no
    // dispatcher slot, so coalescing can never deadlock the pool), then
    // stamp the shared result as coalesced. Idempotent across repeated
    // and concurrent awaits of the same ticket.
    try {
      QueryResult result = ResultCache::await(job.flight);
      result.stats.result_cache_coalesced = true;
      result.stats.queue_ms = 0.0;
      std::lock_guard lock(job.m);
      if (!job.done) {
        job.result = std::move(result);
        job.done = true;
      }
    } catch (...) {
      std::lock_guard lock(job.m);
      if (!job.done) {
        job.error = std::current_exception();
        job.done = true;
      }
    }
    job.cv.notify_all();
  }
  std::unique_lock lock(job.m);
  job.cv.wait(lock, [&] { return job.done; });
  if (job.error != nullptr) std::rethrow_exception(job.error);
  return job.result;
}

bool QueryScheduler::cancel(const QueryTicket& ticket, AbortReason reason) {
  if (!ticket.valid()) return false;
  const std::shared_ptr<QueryJob>& job = ticket.job_;
  {
    std::lock_guard lock(mutex_);
    const auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end()) {
      queue_.erase(it);
      ++stats_.cancelled_while_queued;
      QueryResult result;
      result.aborted = true;
      result.abort_reason = reason;
      fulfill(*job, std::move(result));
      return true;
    }
  }
  // Dispatched (or about to be): route through the run's cancellation
  // handle — a pre-attach cancel is remembered and applied on attach.
  // Cached-hit / coalesced tickets have no run of their own to cancel.
  return job->run_control != nullptr && job->run_control->cancel(reason);
}

unsigned QueryScheduler::cancel_all_queued(AbortReason reason) {
  std::vector<std::shared_ptr<QueryJob>> dropped;
  {
    std::lock_guard lock(mutex_);
    dropped.assign(queue_.begin(), queue_.end());
    queue_.clear();
    stats_.cancelled_while_queued += dropped.size();
  }
  for (const auto& job : dropped) {
    QueryResult result;
    result.aborted = true;
    result.abort_reason = reason;
    fulfill(*job, std::move(result));
  }
  return static_cast<unsigned>(dropped.size());
}

unsigned QueryScheduler::inflight() const {
  std::lock_guard lock(mutex_);
  return busy_;
}

unsigned QueryScheduler::queued() const {
  std::lock_guard lock(mutex_);
  return static_cast<unsigned>(queue_.size());
}

SchedulerStats QueryScheduler::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

EngineConfig QueryScheduler::job_config(const QueryJob& job) const {
  EngineConfig cfg = engine_->config_snapshot();
  if (job.profile) cfg.profile = true;
  if (config_.partition_credits && slots_ > 1) {
    // Equal split across the in-flight slots, floored by the fairness
    // knob. Static shares keep the partitions disjoint even when some
    // slots idle — strict isolation over peak utilization.
    double share = 1.0 / static_cast<double>(slots_);
    share = std::max(share, config_.min_credit_share);
    cfg.credit_partition_share = std::min(1.0, share);
  }
  // Global budget slicing: a query without its own budget runs under an
  // equal slice of the global one (with a per-query budget, the slot
  // cap in the constructor already made the wave fit).
  if (config_.global_max_live_contexts > 0 && cfg.max_live_contexts == 0) {
    cfg.max_live_contexts =
        std::max<std::uint64_t>(1, config_.global_max_live_contexts / slots_);
  }
  if (config_.global_reach_index_max_bytes > 0 &&
      cfg.reach_index_max_bytes == 0) {
    cfg.reach_index_max_bytes = std::max<std::uint64_t>(
        1, config_.global_reach_index_max_bytes / slots_);
  }
  return cfg;
}

void QueryScheduler::fulfill(QueryJob& job, QueryResult result) {
  if (job.lead_flight != nullptr && result_cache_ != nullptr) {
    // Leader hand-off: publish to every coalesced follower and admit
    // into the cache when clean. A rejected/cancelled leader publishes
    // its aborted result — followers share the leader's fate, the cache
    // stores nothing.
    result_cache_->complete(job.lead_flight, job.cache_text,
                            job.cache_profile, result, job.scope);
    job.lead_flight.reset();
  }
  {
    std::lock_guard lock(job.m);
    job.result = std::move(result);
    job.done = true;
  }
  job.cv.notify_all();
}

void QueryScheduler::fail(QueryJob& job, std::exception_ptr error) {
  if (job.lead_flight != nullptr && result_cache_ != nullptr) {
    result_cache_->complete_error(job.lead_flight, job.cache_text,
                                  job.cache_profile, error);
    job.lead_flight.reset();
  }
  {
    std::lock_guard lock(job.m);
    job.error = std::move(error);
    job.done = true;
  }
  job.cv.notify_all();
}

void QueryScheduler::run_job(const std::shared_ptr<QueryJob>& job) {
  QueryResult result;
  std::exception_ptr error;
  const EngineConfig cfg = job_config(*job);
  bool lapsed_in_queue = false;
  if (cfg.query_deadline_ms > 0 &&
      job->queue_ms >= static_cast<double>(cfg.query_deadline_ms)) {
    // The deadline lapsed while the submission sat in the admission
    // queue. The engine's watchdog measures only execution time, so
    // without this check a long-queued query would START after its
    // deadline, run its full course, and only then get aborted — or
    // worse, complete. Abort at dispatch, before spending the slot.
    lapsed_in_queue = true;
    result.aborted = true;
    result.abort_reason = AbortReason::kDeadline;
    result.stats.queue_ms = job->queue_ms;
    result.stats.snapshot_epoch =
        job->snapshot != nullptr ? job->snapshot->epoch() : 0;
  } else {
    try {
      result = engine_->execute_plan(*job->plan, cfg, job->run_control.get(),
                                     job->snapshot);
      result.stats.queue_ms = job->queue_ms;
      result.stats.result_cache_bypassed = job->cache_bypass;
    } catch (...) {
      // Engine invariant failures surface on the awaiting thread, exactly
      // like the blocking path's propagation to the caller.
      error = std::current_exception();
    }
  }
  // Retire BEFORE fulfilling: an awaiter that observed the result must
  // also observe balanced books (completed + cancelled == submitted).
  {
    std::lock_guard lock(mutex_);
    --busy_;
    ++stats_.completed;
    if (lapsed_in_queue) ++stats_.deadline_lapsed_in_queue;
    running_.erase(std::remove(running_.begin(), running_.end(), job),
                   running_.end());
  }
  if (error != nullptr) {
    fail(*job, error);
  } else {
    fulfill(*job, std::move(result));
  }
}

void QueryScheduler::dispatcher_main() {
  while (true) {
    std::shared_ptr<QueryJob> job;
    {
      std::unique_lock lock(mutex_);
      work_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
      stats_.peak_inflight = std::max(stats_.peak_inflight, busy_);
      running_.push_back(job);
    }
    job->queue_ms = job->queued_at.elapsed_ms();
    run_job(job);
  }
}

}  // namespace rpqd
