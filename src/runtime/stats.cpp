#include "runtime/stats.h"

#include <algorithm>
#include <sstream>

namespace rpqd {

namespace {

void merge_depth_vector(std::vector<std::uint64_t>& into,
                        const std::vector<std::uint64_t>& from) {
  if (from.size() > into.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

}  // namespace

void RpqStageStats::merge(const RpqStageStats& other) {
  merge_depth_vector(matches_per_depth, other.matches_per_depth);
  merge_depth_vector(eliminated_per_depth, other.eliminated_per_depth);
  merge_depth_vector(duplicated_per_depth, other.duplicated_per_depth);
  index_entries += other.index_entries;
  index_bytes += other.index_bytes;
  index_hot_allocs += other.index_hot_allocs;
  index_duplicate_entries += other.index_duplicate_entries;
  index_seeded += other.index_seeded;
  index_seed_hits += other.index_seed_hits;
  max_depth_observed = std::max(max_depth_observed, other.max_depth_observed);
  if (other.consensus_max_depth) consensus_max_depth = other.consensus_max_depth;
}

std::string RuntimeStats::stage_table() const {
  std::ostringstream out;
  out << "stage | visits   | remote-in | remote-out | note\n";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& row = stages[s];
    out << 'S' << s << (s < 10 ? "    | " : "   | ");
    char buf[80];
    std::snprintf(buf, sizeof buf, "%-8llu | %-9llu | %-10llu | %s",
                  static_cast<unsigned long long>(row.visits),
                  static_cast<unsigned long long>(row.remote_in),
                  static_cast<unsigned long long>(row.remote_out),
                  row.note.c_str());
    out << buf << '\n';
  }
  return out.str();
}

std::string RuntimeStats::summary() const {
  std::ostringstream out;
  out << "rows=" << output_rows << " elapsed=" << elapsed_ms << "ms"
      << " msgs=" << data_messages << " bytes=" << bytes_sent
      << " contexts=" << contexts_sent << " peak_buffered=" << peak_queued_bytes
      << " blocked=" << flow_blocked << " overflow=" << flow_overflow_used
      << " fast_path=" << flow_fast_path;
  if (contexts_sent > 0) {
    out << " bytes/ctx=" << (bytes_sent / contexts_sent);
  }
  if (faults_delayed + faults_duplicated + faults_dup_dropped + faults_stalls >
      0) {
    out << "\n  faults: delayed=" << faults_delayed
        << " duplicated=" << faults_duplicated
        << " dup_dropped=" << faults_dup_dropped
        << " stalls=" << faults_stalls
        << " outstanding_credits=" << flow_outstanding;
  }
  if (faults_lost + faults_corrupted + retransmits + acks_sent +
          payload_corruptions_detected + dedup_drops >
      0) {
    out << "\n  transport: lost=" << faults_lost
        << " corrupted=" << faults_corrupted
        << " retransmits=" << retransmits << " acks=" << acks_sent
        << " crc_detected=" << payload_corruptions_detected
        << " dedup_drops=" << dedup_drops;
  }
  if (abort_messages + blackholed_messages + epoch_dropped +
          contexts_discarded + retries >
      0) {
    out << "\n  lifecycle: abort_msgs=" << abort_messages
        << " blackholed=" << blackholed_messages
        << " epoch_dropped=" << epoch_dropped
        << " discarded=" << contexts_discarded
        << " peak_live=" << peak_live_contexts << " retries=" << retries;
  }
  if (mirror_fanouts + mirror_expands + contexts_redirected > 0) {
    out << "\n  balance: mirror_fanouts=" << mirror_fanouts
        << " mirror_expands=" << mirror_expands
        << " redirected=" << contexts_redirected
        << " imbalance=" << load_imbalance;
  }
  for (std::size_t g = 0; g < rpq.size(); ++g) {
    const auto& r = rpq[g];
    out << "\n  rpq[" << g << "]: matches=" << r.total_matches()
        << " eliminated=" << r.total_eliminated()
        << " duplicated=" << r.total_duplicated()
        << " index_entries=" << r.index_entries << " (" << r.index_bytes
        << "B) max_depth=" << r.max_depth_observed;
    if (r.consensus_max_depth) out << " consensus=" << *r.consensus_max_depth;
    if (r.index_seeded > 0) {
      out << " seeded=" << r.index_seeded << " seed_hits=" << r.index_seed_hits;
    }
  }
  return out.str();
}

}  // namespace rpqd
