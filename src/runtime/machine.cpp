#include "runtime/machine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "rpq/rpid.h"

namespace rpqd {

namespace {

Direction effective_dir(Direction hop_dir, std::uint8_t phase) {
  if (hop_dir == Direction::kBoth) {
    return phase == 0 ? Direction::kOut : Direction::kIn;
  }
  return hop_dir;
}

/// Mirror-expand buffers live beside ordinary (dest, stage, depth)
/// buffers under their own key bit (bit 39: above any Depth, below the
/// stage field) — a delegation must never ride in a buffer whose
/// receiver would run_context its contexts, and vice versa.
constexpr std::uint64_t kMirrorKeyBit = 1ull << 39;

std::uint64_t buffer_key(MachineId dest, StageId stage, Depth depth) {
  return (static_cast<std::uint64_t>(dest) << 56) |
         (static_cast<std::uint64_t>(stage) << 40) |
         static_cast<std::uint64_t>(depth);
}

void bump(std::vector<std::uint64_t>& v, Depth depth) {
  if (depth >= v.size()) v.resize(depth + 1, 0);
  ++v[depth];
}

}  // namespace

MachineRuntime::MachineRuntime(MachineId id, const PartitionView* partition,
                               const ExecPlan* plan,
                               const EngineConfig* config, Network* network,
                               AbortController* abort,
                               const RunCacheContext* cache)
    : id_(id),
      part_(partition),
      plan_(plan),
      config_(config),
      net_(network),
      abort_(abort),
      cache_(cache),
      detector_(id, network->num_machines(),
                static_cast<unsigned>(plan->stages.size()),
                plan->num_rpq_indexes) {
  std::vector<bool> is_rpq(plan->stages.size(), false);
  stage_group_.assign(plan->stages.size(), -1);
  for (const auto& sp : plan->stages) {
    if (sp.kind == StageKind::kPath || sp.kind == StageKind::kRpqControl) {
      is_rpq[sp.id] = true;
      stage_group_[sp.id] =
          static_cast<int>(plan->stages[sp.rpq_group].rpq.index_id);
    }
  }
  // Static half of the §14 delegation gate; the kMirrorRefresh readiness
  // of the peers is polled per hot frame (broadcast by the engine before
  // worker threads start, so it never flips mid-run).
  mirror_armed_ = config->hot_mirror_fanout && part_->mirrors() != nullptr &&
                  network->num_machines() > 1;
  flow_ = std::make_unique<FlowControl>(*config, network->num_machines(),
                                        std::move(is_rpq));
  net_->inbox(id_).attach_flow_control(flow_.get());
  net_->inbox(id_).set_deep_priority(config->deep_message_priority);
  // Receiver-side fault injection (dedup/delay/stalls); the sender side
  // (sequence stamping, duplication) is armed by the engine on the
  // Network itself before any machine is constructed.
  net_->inbox(id_).configure_faults(config->fault_plan, id_,
                                    network->num_machines());
  for (unsigned g = 0; g < plan->num_rpq_indexes; ++g) {
    indexes_.push_back(std::make_unique<ReachabilityIndex>(
        part_->num_local(), config->reach_index_preallocate,
        config->reach_index_shards));
  }
  if (cache_ != nullptr && cache_->cache != nullptr) {
    // Seed eligible groups' indexes from the machine's persistent cache.
    // Seeds are inert sentinels (rpq/reach_index.h): whatever the cache
    // holds — stale, evicted-and-readded, even adversarially poisoned —
    // can only move hit counters, never an emit/eliminate decision.
    minted_.resize(plan->num_rpq_indexes);
    for (unsigned g = 0; g < plan->num_rpq_indexes; ++g) {
      const RpqGroupKey& key = (*cache_->keys)[g];
      if (!key.eligible) continue;
      for (const auto& e : cache_->cache->snapshot(key.hash)) {
        indexes_[g]->seed(e.dst, make_stable_rpid(e.src));
      }
    }
  }
  for (unsigned w = 0; w < config->workers_per_machine; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->id = static_cast<WorkerId>(w);
    worker->matches.resize(plan->num_rpq_indexes);
    worker->eliminated.resize(plan->num_rpq_indexes);
    worker->duplicated.resize(plan->num_rpq_indexes);
    worker->stage_visits.assign(plan->stages.size(), 0);
    if (config->profile) {
      // Preallocate the profiling slot now, before the query's hot path;
      // with profiling off `prof` stays null and every hook is a single
      // never-taken branch.
      worker->prof = std::make_unique<WorkerProfile>(
          static_cast<unsigned>(plan->stages.size()),
          config->profile_preallocated_depths);
    }
    workers_.push_back(std::move(worker));
  }
}

// --------------------------------------------------------------- matching --

bool MachineRuntime::vertex_matches(const StagePlan& sp, LocalVertexId lv,
                                    const std::vector<Value>& slots) const {
  if (!sp.vlabels.empty()) {
    const LabelId label = part_->label(lv);
    if (std::find(sp.vlabels.begin(), sp.vlabels.end(), label) ==
        sp.vlabels.end()) {
      return false;
    }
  }
  if (!sp.filters.empty()) {
    const EvalCtx ctx = eval_ctx(lv, slots);
    for (const auto& filter : sp.filters) {
      if (!filter.evaluate_bool(ctx)) return false;
    }
  }
  return true;
}

void MachineRuntime::apply_actions(const StagePlan& sp, LocalVertexId lv,
                                   std::vector<Value>& slots) const {
  for (const auto& action : sp.actions) {
    if (action.kind == SlotAction::Kind::kStoreVertex) {
      slots[action.slot] = vertex_value(part_->to_global(lv));
    } else {
      slots[action.slot] = action.prop == kInvalidProp
                               ? null_value()
                               : part_->property(lv, action.prop);
    }
  }
}

// -------------------------------------------------------------- execution --

void MachineRuntime::run_context(Worker& w, StageId stage, VertexId vertex,
                                 Depth depth, std::uint64_t rpid,
                                 std::vector<Value> slots) {
  const LocalVertexId lv = part_->require_local(vertex);
  RunState rs;
  rs.stack.reserve(plan_->stages.size() +
                   config_->context_preallocated_depth + 16);
  rs.slots = std::move(slots);
  rs.saved.reserve(32);
  enter_stage(w, rs, stage, lv, depth, rpid, false);
  while (!rs.stack.empty()) {
    if (halted()) {
      // The halt poll of the traversal loop itself: unwind the partial
      // walk (keeping save-stack and detector balanced) and drop it.
      unwind(rs);
      ++w.discarded;
      break;
    }
    step(w, rs);
  }
}

void MachineRuntime::run_mirror_expand(Worker& w, StageId stage,
                                       VertexId hot_vertex, Depth depth,
                                       std::uint64_t rpid,
                                       std::vector<Value> slots) {
  ++w.mirror_expands;
  const StagePlan& sp = plan_->stages[stage];
  const MirrorSet* mirrors = part_->mirrors();
  engine_check(mirrors != nullptr, "mirror-expand delegation without mirrors");
  const auto row = mirrors->row_of(hot_vertex);
  engine_check(row.has_value(), "mirror-expand for a non-hot vertex");
  RunState rs;
  rs.stack.reserve(plan_->stages.size() +
                   config_->context_preallocated_depth + 16);
  rs.slots = std::move(slots);
  rs.saved.reserve(32);
  // Enumerate this machine's bucket of the hot vertex's adjacency —
  // exactly the entries whose destination this machine owns, so each one
  // reproduces the enter_stage(hop.to, dst) call the delegator's own
  // enumeration skipped. The hot visit at `stage` itself already
  // happened at the delegator; re-entering it here would double-count.
  // Edge filters are impossible (the delegation gate enumerates normally
  // when the hop carries any); eprop stores read this bucket's columns —
  // copies of the owner view's, so the slot values are identical.
  const auto expand = [&](Direction dir) -> bool {  // false = halted
    const Adjacency& bucket = mirrors->bucket(id_, dir);
    const std::size_t nlabels =
        std::max<std::size_t>(1, sp.hop.elabels.size());
    for (std::size_t li = 0; li < nlabels; ++li) {
      const auto [begin, end] =
          sp.hop.elabels.empty()
              ? bucket.range(*row)
              : bucket.label_range(*row, sp.hop.elabels[li]);
      for (std::size_t idx = begin; idx < end; ++idx) {
        if (halted()) return false;
        for (const auto& store : sp.hop.eprop_stores) {
          rs.slots[store.slot] =
              store.prop == kInvalidProp
                  ? null_value()
                  : bucket.edge_property(idx, store.prop);
        }
        // Bucket entries are never the hot vertex itself (it lives on
        // the delegator), so the kBoth reverse-leg self-loop skip does
        // not apply — the owner's own enumeration handles self-loops.
        const VertexId dst = bucket.entry(idx).other;
        if (enter_stage(w, rs, sp.hop.to, part_->require_local(dst), depth,
                        rpid, false)) {
          while (!rs.stack.empty()) {
            if (halted()) {
              unwind(rs);
              ++w.discarded;
              return false;
            }
            step(w, rs);
          }
        }
      }
    }
    return true;
  };
  if (sp.hop.dir == Direction::kBoth) {
    if (expand(Direction::kOut)) expand(Direction::kIn);
  } else {
    expand(sp.hop.dir);
  }
}

bool MachineRuntime::enter_stage(Worker& w, RunState& rs, StageId stage,
                                 LocalVertexId lv, Depth depth,
                                 std::uint64_t rpid, bool from_increment) {
  std::vector<Frame>& stack = rs.stack;
  std::vector<Value>& slots = rs.slots;
  const StagePlan& sp = plan_->stages[stage];
  if (sp.kind == StageKind::kRpqControl) {
    const int group = group_of(stage);
    if (from_increment) {
      ++depth;
    } else {
      // Entering the RPQ from outside: mint the rpid, start at depth 0
      // (0-hop matching is possible via the transition hop — §3.1).
      rpid = mint_rpid(w, group, lv);
      depth = 0;
    }
    const RpqControlPlan& rpq = sp.rpq;
    engine_check(rpq.max_hop == kUnboundedDepth || depth <= rpq.max_hop,
                 "RPQ exploration beyond max_hop");
    bump(w.matches[static_cast<unsigned>(group)], depth);
    bool emit = false;
    bool explore = false;
    const bool below_max =
        rpq.max_hop == kUnboundedDepth || depth < rpq.max_hop;
    if (depth < rpq.min_hop) {
      // Below the window: no index entry is created (§4.5), keep going.
      explore = below_max;
    } else {
      ReachOutcome outcome = ReachOutcome::kNew;
      if (config_->use_reachability_index) {
        outcome = indexes_[static_cast<unsigned>(group)]->check_and_update(
            lv, rpid, depth);
        // Reach-index memory budget (§4.4 arithmetic, 12B/entry): polled
        // only when armed, right where the index grows.
        if (config_->reach_index_max_bytes != 0 &&
            indexes_[static_cast<unsigned>(group)]->approx_dynamic_bytes() >
                config_->reach_index_max_bytes) {
          trip_abort(AbortReason::kReachIndexBudget);
        }
        if (w.prof) {
          ProfileDepthRow& row = w.prof->row(stage, depth);
          ++row.index_probes;
          switch (outcome) {
            case ReachOutcome::kNew: ++row.index_new; break;
            case ReachOutcome::kSeededNew:
              ++row.index_new;  // a seed hit IS a first visit
              ++row.index_seed_hits;
              break;
            case ReachOutcome::kDuplicated: ++row.index_duplicated; break;
            case ReachOutcome::kEliminated: ++row.index_eliminated; break;
          }
        }
      } else if (config_->max_exploration_depth != kUnboundedDepth &&
                 depth >= config_->max_exploration_depth) {
        outcome = ReachOutcome::kEliminated;  // safety cap without index
        // The cap silently truncates the result set; record it so the
        // engine can report a truncated (but non-aborted) QueryResult.
        abort_->note_truncation();
      }
      switch (outcome) {
        case ReachOutcome::kNew:
        case ReachOutcome::kSeededNew:  // by construction: exactly kNew
          emit = true;
          explore = below_max;
          break;
        case ReachOutcome::kDuplicated:
          bump(w.duplicated[static_cast<unsigned>(group)], depth);
          explore = below_max;
          break;
        case ReachOutcome::kEliminated:
          bump(w.eliminated[static_cast<unsigned>(group)], depth);
          break;
      }
    }
    if (emit) {
      // Destination gating: label/filter constraints of the RPQ target
      // vertex, plus the bound-destination equality for cycle-closing
      // RPQs. Failing the gate suppresses emission but not exploration.
      if (!rpq.dest_labels.empty()) {
        const LabelId label = part_->label(lv);
        if (std::find(rpq.dest_labels.begin(), rpq.dest_labels.end(), label) ==
            rpq.dest_labels.end()) {
          emit = false;
        }
      }
      if (emit && !rpq.dest_filters.empty()) {
        const EvalCtx ctx = eval_ctx(lv, slots);
        for (const auto& filter : rpq.dest_filters) {
          if (!filter.evaluate_bool(ctx)) {
            emit = false;
            break;
          }
        }
      }
      if (emit && rpq.bound_dest_slot != kInvalidSlot) {
        const Value& bound = slots[rpq.bound_dest_slot];
        if (bound.type != ValueType::kVertex ||
            as_vertex(bound) != part_->to_global(lv)) {
          emit = false;
        }
      }
    }
    if (!emit && !explore) return false;
    Frame f;
    f.stage = stage;
    f.current = lv;
    f.depth = depth;
    f.rpid = rpid;
    f.emit_pending = emit;
    f.explore_pending = explore;
    f.saved_base = static_cast<std::uint32_t>(rs.saved.size());
    f.saved_count = 0;
    ++w.stage_visits[stage];
    if (w.prof) ++w.prof->row(stage, depth).contexts;
    note_frame_pushed(stage, group, depth);
    stack.push_back(f);
    return true;
  }

  if (!vertex_matches(sp, lv, slots)) return false;
  Frame f;
  f.stage = stage;
  f.current = lv;
  f.depth = depth;
  f.rpid = rpid;
  // Shadow the slots this stage's actions overwrite, so backtracking
  // restores the ancestor iteration's values (path stages run once per
  // RPQ depth along a single traversal).
  f.saved_base = static_cast<std::uint32_t>(rs.saved.size());
  for (const auto& action : sp.actions) {
    rs.saved.emplace_back(action.slot, slots[action.slot]);
  }
  f.saved_count = static_cast<std::uint32_t>(sp.actions.size());
  apply_actions(sp, lv, slots);
  ++w.stage_visits[stage];
  if (w.prof) ++w.prof->row(stage, depth).contexts;
  note_frame_pushed(stage, group_of(stage), depth);
  stack.push_back(f);
  return true;
}

void MachineRuntime::pop_frame(RunState& rs) {
  const Frame& f = rs.stack.back();
  engine_check(rs.saved.size() == f.saved_base + f.saved_count,
               "slot save-stack out of sync with frame stack");
  // Restore shadowed slots in reverse write order.
  for (std::uint32_t i = f.saved_count; i > 0; --i) {
    const auto& [slot, value] = rs.saved[f.saved_base + i - 1];
    rs.slots[slot] = value;
  }
  rs.saved.resize(f.saved_base);
  note_frame_popped(f.stage, group_of(f.stage), f.depth);
  rs.stack.pop_back();
}

void MachineRuntime::unwind(RunState& rs) {
  while (!rs.stack.empty()) pop_frame(rs);
}

bool MachineRuntime::next_neighbor(Frame& f, const StagePlan& sp,
                                   std::size_t& out_idx,
                                   const ViewAdjacency** out_adj) {
  while (true) {
    if (f.cursor < f.end) {
      const Direction dir = effective_dir(sp.hop.dir, f.dir_phase);
      const ViewAdjacency& adj = part_->adjacency(dir);
      const std::size_t idx = f.cursor++;
      // An undirected hop visits out- then in-entries; a self-loop would
      // appear in both, so skip it on the reverse leg.
      if (sp.hop.dir == Direction::kBoth && f.dir_phase == 1 &&
          adj.entry(idx).other == part_->to_global(f.current)) {
        continue;
      }
      out_idx = idx;
      *out_adj = &adj;
      return true;
    }
    // Advance to the next (label, direction) range.
    const Direction dir = effective_dir(sp.hop.dir, f.dir_phase);
    const ViewAdjacency& adj = part_->adjacency(dir);
    const std::size_t nlabels = std::max<std::size_t>(1, sp.hop.elabels.size());
    if (f.label_idx < nlabels) {
      if (sp.hop.elabels.empty()) {
        const auto [begin, end] = adj.range(f.current);
        f.cursor = begin;
        f.end = end;
      } else {
        const auto [begin, end] =
            adj.label_range(f.current, sp.hop.elabels[f.label_idx]);
        f.cursor = begin;
        f.end = end;
      }
      ++f.label_idx;
      continue;
    }
    if (sp.hop.dir == Direction::kBoth && f.dir_phase == 0) {
      f.dir_phase = 1;
      f.label_idx = 0;
      continue;
    }
    return false;
  }
}

std::size_t MachineRuntime::edge_multiplicity(
    LocalVertexId lv, Direction dir, const std::vector<LabelId>& labels,
    VertexId target) const {
  const auto count_dir = [&](Direction d) -> std::size_t {
    const ViewAdjacency& adj = part_->adjacency(d);
    if (labels.empty()) return adj.count_edges_to(lv, target, std::nullopt);
    std::size_t count = 0;
    for (const LabelId l : labels) {
      count += adj.count_edges_to(lv, target, l);
    }
    return count;
  };
  if (dir == Direction::kBoth) {
    // Out entries plus in entries; a self-loop appears in both, so count
    // it once (mirrors the neighbor hop's reverse-leg self-loop skip).
    std::size_t count = count_dir(Direction::kOut);
    if (target != part_->to_global(lv)) count += count_dir(Direction::kIn);
    return count;
  }
  return count_dir(dir);
}

void MachineRuntime::output_row(Worker& w, const Frame& f,
                                const std::vector<Value>& slots) {
  ++w.rows;
  if (plan_->count_star) return;
  EvalCtx ctx = eval_ctx(f.current, slots);
  const auto render = [&](const EvalValue& v) {
    return v.text != nullptr ? *v.text : part_->catalog().render(v.v);
  };
  if (plan_->has_aggregates) {
    // Fold the match into the worker-local partial aggregates.
    std::string map_key;
    std::vector<std::string> keys;
    keys.reserve(plan_->group_exprs.size());
    for (const auto& key_expr : plan_->group_exprs) {
      keys.push_back(render(key_expr.evaluate(ctx)));
      map_key += keys.back();
      map_key += '\x1f';
    }
    AggRow& row = w.agg_rows[map_key];
    if (row.states.empty()) {
      row.keys = std::move(keys);
      row.states.resize(plan_->aggregates.size());
    }
    for (std::size_t i = 0; i < plan_->aggregates.size(); ++i) {
      const AggSpec& spec = plan_->aggregates[i];
      const EvalValue operand = spec.has_operand
                                    ? spec.operand.evaluate(ctx)
                                    : EvalValue::of(bool_value(true));
      row.states[i].update(spec.kind, operand, part_->catalog());
    }
    return;
  }
  std::vector<std::string> row;
  row.reserve(plan_->projections.size());
  for (const auto& proj : plan_->projections) {
    row.push_back(render(proj.evaluate(ctx)));
  }
  w.result_rows.push_back(std::move(row));
}

AggMap MachineRuntime::merged_agg_rows() const {
  std::vector<pgql::AggKind> kinds;
  kinds.reserve(plan_->aggregates.size());
  for (const auto& spec : plan_->aggregates) kinds.push_back(spec.kind);
  AggMap merged;
  for (const auto& w : workers_) {
    merge_agg_maps(merged, w->agg_rows, kinds, part_->catalog());
  }
  return merged;
}

void MachineRuntime::step(Worker& w, RunState& rs) {
  std::vector<Frame>& stack = rs.stack;
  std::vector<Value>& slots = rs.slots;
  Frame& f = stack.back();
  const StagePlan& sp = plan_->stages[f.stage];

  // NOTE: a frame pops only after its whole subtree completed — children
  // read slot values their ancestors wrote, and pop_frame restores the
  // shadowed values, so popping a parent before running its child would
  // hand the child stale slots.
  if (sp.kind == StageKind::kRpqControl) {
    // Deep-first: explore path stages before emitting, as the paper's
    // engine favours deeper work (§4.4).
    if (f.explore_pending) {
      f.explore_pending = false;
      enter_stage(w, rs, sp.rpq.path_entry, f.current, f.depth, f.rpid,
                  false);
      return;
    }
    if (f.emit_pending) {
      f.emit_pending = false;
      enter_stage(w, rs, sp.rpq.continuation, f.current, f.depth, f.rpid,
                  false);
      return;
    }
    pop_frame(rs);
    return;
  }

  switch (sp.hop.kind) {
    case HopKind::kNeighbor: {
      if (f.step == 0) {
        // §14 delegation gate, checked once per frame before the cursor
        // moves (kNeighbor leaves f.step free): 1 = normal enumeration,
        // 2 = delegated — peers expand their mirror buckets, this
        // machine enumerates but skips every non-owned destination.
        f.step = mirror_delegate(w, f, sp, slots) ? 2 : 1;
      }
      std::size_t idx = 0;
      const ViewAdjacency* adj = nullptr;
      if (!next_neighbor(f, sp, idx, &adj)) {
        pop_frame(rs);
        return;
      }
      if (!sp.hop.edge_filters.empty() || !sp.hop.eprop_stores.empty()) {
        EvalCtx ctx = eval_ctx(f.current, slots);
        ctx.adj = adj;
        ctx.entry_idx = idx;
        for (const auto& filter : sp.hop.edge_filters) {
          if (!filter.evaluate_bool(ctx)) return;
        }
        for (const auto& store : sp.hop.eprop_stores) {
          slots[store.slot] = store.prop == kInvalidProp
                                  ? null_value()
                                  : adj->edge_property(idx, store.prop);
        }
      }
      const VertexId dst = adj->entry(idx).other;
      const auto depth = f.depth;
      const auto rpid = f.rpid;
      if (part_->owns(dst)) {
        if (!try_share_local(w, sp.hop.to, dst, depth, rpid, slots)) {
          enter_stage(w, rs, sp.hop.to, part_->require_local(dst),
                      depth, rpid, false);
        }
      } else if (f.step != 2) {
        send_remote(w, sp.hop.to, dst, depth, rpid, slots);
      }
      // f.step == 2: the owner's mirror delegation already covers every
      // non-owned destination — sending it too would double-visit.
      return;
    }
    case HopKind::kEdge: {
      if (f.step != 0) {
        pop_frame(rs);
        return;
      }
      f.step = 1;
      const Value target = slots[sp.hop.target_slot];
      const std::size_t multiplicity =
          target.type == ValueType::kVertex
              ? edge_multiplicity(f.current, sp.hop.dir, sp.hop.elabels,
                                  as_vertex(target))
              : 0;
      const auto current = f.current;
      const auto depth = f.depth;
      const auto rpid = f.rpid;
      const StageId to = sp.hop.to;
      // Homomorphic matching: each parallel edge is a distinct match.
      for (std::size_t i = 0; i < multiplicity; ++i) {
        enter_stage(w, rs, to, current, depth, rpid, false);
      }
      return;
    }
    case HopKind::kInspect: {
      if (f.step != 0) {
        pop_frame(rs);
        return;
      }
      f.step = 1;
      const Value target = slots[sp.hop.target_slot];
      const auto depth = f.depth;
      const auto rpid = f.rpid;
      const StageId to = sp.hop.to;
      if (target.type != ValueType::kVertex) return;
      const VertexId dst = as_vertex(target);
      if (part_->owns(dst)) {
        enter_stage(w, rs, to, part_->require_local(dst), depth,
                    rpid, false);
      } else {
        send_remote(w, to, dst, depth, rpid, slots);
      }
      return;
    }
    case HopKind::kTransition: {
      if (f.step != 0) {
        pop_frame(rs);
        return;
      }
      f.step = 1;
      enter_stage(w, rs, sp.hop.to, f.current, f.depth, f.rpid,
                  sp.increments_depth);
      return;
    }
    case HopKind::kOutput: {
      output_row(w, f, slots);
      pop_frame(rs);
      return;
    }
  }
}

// -------------------------------------------------------------- messaging --

void MachineRuntime::send_remote(Worker& w, StageId stage, VertexId vertex,
                                 Depth depth, std::uint64_t rpid,
                                 const std::vector<Value>& slots) {
  send_to(w, part_->owner_of(vertex), stage, vertex, depth, rpid, slots,
          /*mirror=*/false);
}

bool MachineRuntime::mirror_delegate(Worker& w, Frame& f, const StagePlan& sp,
                                     const std::vector<Value>& slots) {
  if (!mirror_armed_) return false;
  // Edge filters need the owner's EvalCtx (arbitrary slot/property
  // expressions); a frame carrying them always enumerates normally.
  // eprop_stores ARE delegable: the buckets carry the edge-property
  // columns, and the receiver writes the slots from its own slice.
  if (!sp.hop.edge_filters.empty()) return false;
  const MirrorSet* mirrors = part_->mirrors();
  const VertexId gid = part_->to_global(f.current);
  const auto row = mirrors->row_of(gid);
  if (!row.has_value()) return false;
  // Dynamic half of the gate: a peer that never saw the kMirrorRefresh
  // broadcast would treat the delegation as ordinary contexts (a global
  // hot id it does not own) — delegate only when the whole cluster is
  // armed. The broadcast precedes worker start, so this never flips.
  if (!net_->mirror_ready_all()) return false;
  const unsigned n = net_->num_machines();
  for (unsigned m = 0; m < n; ++m) {
    if (m == id_) continue;
    bool nonempty = false;
    if (sp.hop.dir != Direction::kIn) {
      nonempty = mirrors->bucket_degree(static_cast<MachineId>(m), *row,
                                        Direction::kOut) > 0;
    }
    if (!nonempty && sp.hop.dir != Direction::kOut) {
      nonempty = mirrors->bucket_degree(static_cast<MachineId>(m), *row,
                                        Direction::kIn) > 0;
    }
    if (!nonempty) continue;  // no neighbors of gid live on m
    send_to(w, static_cast<MachineId>(m), f.stage, gid, f.depth, f.rpid,
            slots, /*mirror=*/true);
  }
  ++w.mirror_fanouts;
  return true;
}

void MachineRuntime::send_to(Worker& w, MachineId dest, StageId stage,
                             VertexId vertex, Depth depth, std::uint64_t rpid,
                             const std::vector<Value>& slots, bool mirror) {
  const std::uint64_t key =
      buffer_key(dest, stage, depth) | (mirror ? kMirrorKeyBit : 0);
  auto it = w.out.find(key);
  if (it == w.out.end()) {
    const auto credit = acquire_credit_blocking(w, dest, stage, depth);
    if (!credit) {
      // Halted while blocked: drop the context (never counted as sent,
      // so no DONE is owed) and let the caller's halt poll unwind.
      ++w.discarded;
      return;
    }
    // The blocking acquire processes incoming messages (pickup rule iii),
    // and those nested traversals can open this very buffer. Re-probe:
    // emplacing onto the existing key would silently destroy the fresh
    // credit with the temporary OutBuffer — a flow-control leak.
    it = w.out.find(key);
    if (it != w.out.end()) {
      flow_->release(dest, stage, depth, *credit);
    } else {
      OutBuffer buf;
      buf.dest = dest;
      buf.stage = stage;
      buf.depth = depth;
      buf.credit = *credit;
      buf.mirror = mirror;
      buf.payload.reserve(config_->buffer_bytes);
      it = w.out.emplace(key, std::move(buf)).first;
    }
  }
  OutBuffer& buf = it->second;
  BinaryWriter writer(buf.payload);
  encode_context(writer, buf.codec, vertex, rpid, slots);
  ++buf.count;
  detector_.note_sent(stage, group_of(stage), depth, 1);
  if (w.prof) ++w.prof->row(stage, depth).ctx_sent;
  if (buf.payload.size() >= config_->buffer_bytes) {
    OutBuffer full = std::move(buf);
    w.out.erase(it);
    flush_buffer(w, std::move(full));
  }
}

bool MachineRuntime::try_share_local(Worker& w, StageId stage,
                                     VertexId vertex, Depth depth,
                                     std::uint64_t rpid,
                                     const std::vector<Value>& slots) {
  if (!config_->adfs_work_sharing || workers_.size() < 2) return false;
  const auto queued = shared_queued_.load(std::memory_order_relaxed);
  if (queued >= config_->adfs_queue_limit) return false;
  // aDFS heuristic: offload when a peer is idle, and additionally keep a
  // small buffet (one task per peer) queued so freshly-idle workers find
  // work immediately instead of spinning.
  if (queued + 1 >= workers_.size()) {
    bool peer_idle = false;
    for (const auto& peer : workers_) {
      if (peer.get() != &w && !peer->busy.load(std::memory_order_relaxed)) {
        peer_idle = true;
        break;
      }
    }
    if (!peer_idle) return false;
  }
  shared_queued_.fetch_add(1, std::memory_order_relaxed);
  shared_total_.fetch_add(1, std::memory_order_relaxed);
  Context ctx;
  ctx.stage = stage;
  ctx.vertex = vertex;
  ctx.depth = depth;
  ctx.rpid = rpid;
  ctx.slots = slots;
  // Keep the pending task visible to the termination detector.
  note_frame_pushed(stage, group_of(stage), depth);
  shared_tasks_.push(std::move(ctx));
  return true;
}

void MachineRuntime::flush_buffer(Worker& w, OutBuffer&& buf) {
  if (w.prof) {
    ProfileDepthRow& row = w.prof->row(buf.stage, buf.depth);
    ++row.msgs_sent;
    row.bytes_sent += buf.payload.size();
  }
  Message msg;
  msg.header.type = MessageType::kData;
  msg.header.src = id_;
  msg.header.stage = buf.stage;
  msg.header.depth = buf.depth;
  msg.header.count = buf.count;
  msg.header.credit = buf.credit;
  msg.header.credit_depth = buf.depth;
  msg.header.flags = buf.mirror ? kMessageFlagMirror : 0;
  msg.payload = std::move(buf.payload);
  net_->send(buf.dest, std::move(msg));
}

void MachineRuntime::flush_all(Worker& w) {
  if (w.out.empty()) return;
  std::vector<OutBuffer> pending;
  pending.reserve(w.out.size());
  for (auto& [key, buf] : w.out) {
    (void)key;
    pending.push_back(std::move(buf));
  }
  w.out.clear();
  if (config_->load_aware_flush && pending.size() > 1) {
    // §14 balance signal: ship work toward underloaded machines first.
    // Ordering only — every buffer still flushes in this call, so the
    // result set and all accounting identities are untouched.
    const LoadBoard& board = net_->load_board();
    std::vector<std::int64_t> load(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      load[i] = board.queued(pending[i].dest);
    }
    std::vector<std::size_t> order(pending.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return load[a] < load[b];
                     });
    std::vector<OutBuffer> sorted;
    sorted.reserve(pending.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      // Advanced ahead of its buffer-map position = one redirect.
      if (order[i] > i) net_->load_board().note_redirect();
      sorted.push_back(std::move(pending[order[i]]));
    }
    pending = std::move(sorted);
  }
  for (auto& buf : pending) flush_buffer(w, std::move(buf));
}

std::optional<CreditClass> MachineRuntime::acquire_credit_blocking(
    Worker& w, MachineId dest, StageId stage, Depth depth) {
  std::optional<Stopwatch> starved;
  // Time from the first failed try_acquire to the eventual grant (nested
  // pickup work included — the paper's "worker diverted by flow control"
  // interval). Feeds the profile's per-credit-class stall attribution
  // and the LoadBoard's per-machine starvation signal (§14); constructed
  // only on the already-slow blocked path.
  std::optional<Stopwatch> stall;
  unsigned backoff = 0;
  while (true) {
    // Reliable-delivery tick: a worker blocked on credits is exactly the
    // victim of a lost DONE, and this is what retransmits it (or, for a
    // dead link, escalates to the machine-failure abort) instead of the
    // starvation wedging forever.
    net_->pump(id_);
    // Halt poll of the blocking path: an abort (possibly broadcast by the
    // very machine whose DONE we are waiting for) releases this worker —
    // kAbort delivery pokes the flow-control condvar, so a sleeping
    // waiter wakes promptly.
    if (halted()) return std::nullopt;
    if (const auto credit = flow_->try_acquire(dest, stage, depth)) {
      if (stall) {
        const double ms = stall->elapsed_ms();
        if (w.prof) w.prof->note_stall(*credit, ms);
        // §14 balance signal: cumulative per-machine starvation time.
        net_->load_board().note_stall_us(
            id_, static_cast<std::uint64_t>(ms * 1000.0));
      }
      return credit;
    }
    if (!stall) stall.emplace();
    // Pickup rule (iii): when flow control prevents sending, process
    // incoming messages (bounded nesting).
    if (w.nesting < config_->max_pickup_nesting) {
      if (auto msg = net_->inbox(id_).try_pop_data(net_->stats())) {
        starved.reset();
        backoff = 0;
        process_message(w, std::move(*msg));
        continue;
      }
    }
    // Starved (no credit, nothing to process): ship every partial buffer
    // before waiting. Each open buffer holds a credit and undelivered
    // contexts; a cluster where all workers wait on each other's
    // unflushed partials is a livelock (nested processing keeps creating
    // new partials, so this must happen on every starved wait, not once).
    flush_all(w);
    // Backoff: a blocked worker with nothing to process must get off the
    // core — on the shared-core simulation a bare yield storm starves the
    // very workers whose progress would free the credit. The wait wakes
    // immediately when any DONE returns a credit.
    if (backoff < 4) {
      ++backoff;
      std::this_thread::yield();
    } else {
      ++backoff;
      flow_->wait_for_release(std::chrono::microseconds(500));
    }
    // Last-resort valve: after several seconds with no credit, no
    // processable inbox work, and no progress, take an (unbounded but
    // counted) emergency credit rather than risk a pathological stall.
    // Healthy runs never reach this; tests assert the counter stays 0.
    if (!starved) {
      starved.emplace();
    } else if (w.nesting >= config_->max_pickup_nesting &&
               config_->flow_starvation_abort_ms != 0 &&
               starved->elapsed_ms() >
                   static_cast<double>(config_->flow_starvation_abort_ms)) {
      // At the pickup-nesting cap this worker cannot divert to inbound
      // work, so a sustained credit drought cannot self-heal: convert the
      // silent stall into a clean budget abort (below the 5s emergency
      // valve, which stays the last resort for the uncapped case).
      trip_abort(AbortReason::kNestingBudget);
      return std::nullopt;
    } else if (starved->elapsed_seconds() > 5.0) {
      RPQD_WARN << "machine " << static_cast<int>(id_)
                << ": emergency flow-control credit for stage " << stage;
      if (stall) {
        const double ms = stall->elapsed_ms();
        if (w.prof) w.prof->note_stall(CreditClass::kEmergency, ms);
        net_->load_board().note_stall_us(
            id_, static_cast<std::uint64_t>(ms * 1000.0));
      }
      return flow_->acquire_emergency();
    }
  }
}

void MachineRuntime::process_message(Worker& w, Message msg) {
  ++w.nesting;
  const StageId stage = msg.header.stage;
  const int group = group_of(stage);
  // Drain the buffer into per-thread execution contexts first (§3.1's
  // "preallocated intermediate result storage"), then release it: the
  // DONE message returns the *buffer* credit (§3.3), it does not wait for
  // the traversals the contexts seed — holding the credit through the
  // whole downstream execution would serialize credit round-trips on
  // entire dependency chains.
  struct Decoded {
    VertexId vertex;
    std::uint64_t rpid;
    std::vector<Value> slots;
  };
  if (w.prof) {
    ProfileDepthRow& row = w.prof->row(stage, msg.header.depth);
    ++row.msgs_received;
    row.ctx_received += msg.header.count;
  }
  std::vector<Decoded> contexts(msg.header.count);
  BinaryReader reader(msg.payload);
  ContextCodecState codec;  // fresh per message, mirroring the sender
  for (auto& c : contexts) {
    decode_context(reader, codec, plan_->num_slots, c.vertex, c.rpid, c.slots);
  }
  // The contexts are pending local work until their runs complete: keep
  // them visible to the termination detector as active frames.
  for (std::uint32_t i = 0; i < msg.header.count; ++i) {
    note_frame_pushed(stage, group, msg.header.depth);
  }
  Message done;
  done.header.type = MessageType::kDone;
  done.header.src = id_;
  done.header.stage = stage;
  done.header.credit = msg.header.credit;
  done.header.credit_depth = msg.header.credit_depth;
  net_->send(msg.header.src, std::move(done));
  msg.payload.clear();
  msg.payload.shrink_to_fit();  // the "buffer" really is free now

  const bool mirror = (msg.header.flags & kMessageFlagMirror) != 0;
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    if (halted()) {
      // Mid-batch halt: the DONE above already returned the buffer
      // credit, so the rest of the batch is simply discarded (balancing
      // the frames pushed above).
      for (std::size_t j = i; j < contexts.size(); ++j) {
        note_frame_popped(stage, group, msg.header.depth);
        ++w.discarded;
      }
      break;
    }
    auto& c = contexts[i];
    if (mirror) {
      // §14 delegation: c.vertex is a hot GLOBAL id — expand this
      // machine's mirror bucket of its adjacency. Never run_context:
      // that would re-enter `stage`, double-counting the hot visit the
      // delegator already performed.
      run_mirror_expand(w, stage, c.vertex, msg.header.depth, c.rpid,
                        std::move(c.slots));
    } else {
      run_context(w, stage, c.vertex, msg.header.depth, c.rpid,
                  std::move(c.slots));
    }
    note_frame_popped(stage, group, msg.header.depth);
  }
  detector_.note_processed(stage, group, msg.header.depth, msg.header.count);
  --w.nesting;
}

// ------------------------------------------------------- worker main loop --

bool MachineRuntime::machine_idle() const {
  for (const auto& w : workers_) {
    if (w->busy.load(std::memory_order_seq_cst) || !w->bootstrap_done) {
      return false;
    }
  }
  return !net_->inbox(id_).has_data() && shared_tasks_.empty();
}

void MachineRuntime::worker_main(unsigned worker_index) {
  Worker& w = *workers_[worker_index];
  Inbox& inbox = net_->inbox(id_);
  const unsigned stride = static_cast<unsigned>(workers_.size());
  w.bootstrap_cursor = worker_index;
  if (plan_->single_start) {
    // Heuristic (i): a single-match start skips the scan entirely; only
    // the owner machine's worker 0 seeds the traversal.
    w.bootstrap_done = true;
    // owns() is the pure modulo-hash owner function — it claims
    // ownership of ids that are not in the graph at all (e.g. a WHERE
    // ID(v) = literal beyond the vertex count). Only seed vertices that
    // actually exist in the local partition.
    if (worker_index == 0 && plan_->start_vertex != kInvalidVertex &&
        part_->owns(plan_->start_vertex) &&
        part_->to_local(plan_->start_vertex).has_value()) {
      run_context(w, 0, plan_->start_vertex, 0, 0,
                  std::vector<Value>(plan_->num_slots));
    }
  }

  unsigned idle_iterations = 0;
  while (!done_.load(std::memory_order_acquire)) {
    // Reliable-delivery tick (no-op on a reliable fabric): advances the
    // retransmission / standalone-ack / abort-rebroadcast timers. Time
    // passes only while some worker is looping — a cluster fully buried
    // in traversals freezes the timers instead of spuriously escalating.
    net_->pump(id_);
    // Halt poll of the main loop (same cadence as the credit checks):
    // on abort or crash this worker stops consuming work immediately.
    if (halted()) break;
    // (i) Eagerly pick up received messages first.
    if (auto msg = inbox.try_pop_data(net_->stats())) {
      w.busy.store(true, std::memory_order_seq_cst);
      process_message(w, std::move(*msg));
      idle_iterations = 0;
      continue;
    }
    // (i-b) aDFS: adopt a shared local traversal from a busy peer.
    if (auto task = shared_tasks_.try_pop()) {
      w.busy.store(true, std::memory_order_seq_cst);
      shared_queued_.fetch_sub(1, std::memory_order_relaxed);
      run_context(w, task->stage, task->vertex, task->depth, task->rpid,
                  std::move(task->slots));
      note_frame_popped(task->stage, group_of(task->stage), task->depth);
      idle_iterations = 0;
      continue;
    }
    // (ii) Bootstrap the next local vertex.
    if (!w.bootstrap_done) {
      w.busy.store(true, std::memory_order_seq_cst);
      if (w.bootstrap_cursor < part_->num_local()) {
        const LocalVertexId lv =
            static_cast<LocalVertexId>(w.bootstrap_cursor);
        w.bootstrap_cursor += stride;
        // Tombstoned locals keep their slot until a merge but are not
        // part of this snapshot: the scan skips them.
        if (part_->alive(lv)) {
          run_context(w, 0, part_->to_global(lv), 0, 0,
                      std::vector<Value>(plan_->num_slots));
        }
      } else {
        w.bootstrap_done = true;
      }
      idle_iterations = 0;
      continue;
    }
    // (iii) Idle: flush partial buffers, drive the termination protocol.
    flush_all(w);
    w.busy.store(false, std::memory_order_seq_cst);
    ++idle_iterations;
    if (worker_index == 0) {
      // Quiescence snapshot BEFORE ingesting statuses: if the fabric
      // held no undelivered kData/kTermination at this instant, then
      // every status broadcast before it has been delivered — and is
      // therefore ingested by the pop loop below before we decide. That
      // ordering is what lets the two-wave stability argument survive
      // retransmission delay (DESIGN.md §13); deciding while a status
      // or data message is still parked in a retransmission ring could
      // commit to a stale cut.
      const bool quiescent = net_->quiescent();
      while (auto status = inbox.try_pop_term()) {
        detector_.on_status(*status);
      }
      const bool idle = machine_idle();
      detector_.set_idle(idle);
      // Re-broadcast periodically while idle: the repeated identical
      // status is the protocol's second confirmation wave. Forced
      // rounds additionally wait for fabric quiescence — flooding a
      // heavily-corrupting fabric with fresh statuses while earlier
      // ones are still being retransmitted would re-arm the backlog
      // faster than it drains and starve the decision gate above of a
      // quiescent instant (counter-changed broadcasts stay ungated).
      detector_.maybe_broadcast(
          *net_, idle && quiescent && idle_iterations % 4 == 0);
      static const bool term_debug =
          std::getenv("RPQD_TERM_DEBUG") != nullptr;
      if (term_debug && idle_iterations % 4096 == 0) {
        std::fprintf(stderr,
                     "[term m%u] idle=%d quiescent=%d undelivered=%llu "
                     "gt=%d %s\n",
                     static_cast<unsigned>(id_), (int)idle, (int)quiescent,
                     (unsigned long long)net_->undelivered_count(),
                     (int)detector_.globally_terminated(),
                     detector_.debug_string().c_str());
      }
      if (idle && quiescent && detector_.globally_terminated()) {
        done_.store(true, std::memory_order_release);
        break;
      }
    }
    // Idle backoff: keep the core available for busy workers, but stay
    // responsive enough for the termination protocol's rounds.
    if (idle_iterations < 8) {
      std::this_thread::yield();
    } else {
      const unsigned us = std::min<unsigned>(50u * (idle_iterations - 7), 500u);
      std::this_thread::sleep_for(std::chrono::microseconds(us));
      // Idle wall time is transport time: with every worker parked in
      // this sleep, the pump tick would otherwise advance only once per
      // (slack-stretched) sleep cycle, pushing a backed-off
      // retransmission many real seconds away and starving the lossy-
      // fabric drain. Burst-pump in proportion to the sleep just taken
      // so timers track wall pace while idle; busy phases still tick
      // once per loop iteration, preserving the timers-freeze-under-
      // load property.
      for (unsigned k = us / 60; k > 0; --k) net_->pump(id_);
    }
  }
  if (halted()) abort_drain(w);
}

// ------------------------------------------------------ cooperative abort --

void MachineRuntime::trip_abort(AbortReason reason) {
  // First requester wins: fixes the reason on the query's controller and
  // propagates it over the wire. Losers' kAbort broadcast is already on
  // its way from whoever won.
  if (abort_->request(reason)) {
    net_->broadcast_abort(reason);
  }
}

void MachineRuntime::note_frame_pushed(StageId stage, int group, Depth depth) {
  detector_.frame_pushed(stage, group, depth);
  const std::uint64_t live =
      live_frames_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_live_frames_.load(std::memory_order_relaxed);
  while (live > peak && !peak_live_frames_.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  if (config_->max_live_contexts != 0 && live > config_->max_live_contexts) {
    trip_abort(AbortReason::kContextBudget);
  }
}

void MachineRuntime::note_frame_popped(StageId stage, int group, Depth depth) {
  detector_.frame_popped(stage, group, depth);
  live_frames_.fetch_sub(1, std::memory_order_relaxed);
}

void MachineRuntime::abort_drain(Worker& w) {
  // Return every open out-buffer's credit; its undelivered contexts are
  // discarded (never counted as sent, so the detector owes nothing).
  for (auto& [key, buf] : w.out) {
    (void)key;
    flow_->release(buf.dest, buf.stage, buf.depth, buf.credit);
    w.discarded += buf.count;
  }
  w.out.clear();
  // aDFS tasks nobody will adopt anymore.
  while (auto task = shared_tasks_.try_pop()) {
    shared_queued_.fetch_sub(1, std::memory_order_relaxed);
    note_frame_popped(task->stage, group_of(task->stage), task->depth);
    ++w.discarded;
  }
  // Drain still-queued inbound batches, replying DONE for each so the
  // senders' credits come home (outstanding must reach 0 cluster-wide).
  // A crashed machine does nothing here — the fabric blackholes traffic
  // to it and synthesizes the completions on its behalf.
  if (!net_->inbox(id_).crashed()) {
    while (auto msg = net_->inbox(id_).try_pop_data(net_->stats())) {
      Message done;
      done.header.type = MessageType::kDone;
      done.header.src = id_;
      done.header.stage = msg->header.stage;
      done.header.credit = msg->header.credit;
      done.header.credit_depth = msg->header.credit_depth;
      net_->send(msg->header.src, std::move(done));
      w.discarded += msg->header.count;
    }
  }
  w.busy.store(false, std::memory_order_seq_cst);
}

std::uint64_t MachineRuntime::discarded_contexts() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->discarded;
  return total;
}

// ------------------------------------------------------------------ stats --

std::uint64_t MachineRuntime::row_count() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->rows;
  return total;
}

std::vector<std::vector<std::string>> MachineRuntime::take_rows() {
  std::vector<std::vector<std::string>> rows;
  for (const auto& w : workers_) {
    for (auto& row : w->result_rows) rows.push_back(std::move(row));
    w->result_rows.clear();
  }
  return rows;
}

std::uint64_t MachineRuntime::stage_visits(StageId stage) const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->stage_visits[stage];
  return total;
}

void MachineRuntime::merge_profile(QueryProfile& out) const {
  if (!config_->profile) return;
  for (const auto& w : workers_) {
    if (w->prof) w->prof->merge_into(id_, out);
  }
  ProfileMachineSummary& sum = out.machines[id_];
  const FlowControlStats fs = flow_->stats();
  sum.credit_fast_path += fs.fast_path;
  sum.credit_shared += fs.shared_used;
  sum.credit_overflow += fs.overflow_used;
  sum.credit_emergency += fs.emergency_used;
  sum.credit_blocked += fs.blocked;
  sum.term_rounds += detector_.broadcast_rounds();
  sum.peak_live_contexts = peak_live_contexts();
  sum.discarded_contexts += discarded_contexts();
  sum.adfs_shared_tasks += shared_task_count();
  sum.mirror_fanouts += mirror_fanout_count();
  sum.mirror_expands += mirror_expand_count();
  sum.total_contexts += total_stage_visits();
}

RpqStageStats MachineRuntime::rpq_stats(unsigned group) const {
  RpqStageStats stats;
  for (const auto& w : workers_) {
    RpqStageStats partial;
    partial.matches_per_depth = w->matches[group];
    partial.eliminated_per_depth = w->eliminated[group];
    partial.duplicated_per_depth = w->duplicated[group];
    stats.merge(partial);
  }
  const ReachIndexStats idx = indexes_[group]->stats();
  stats.index_entries = idx.entries;
  stats.index_bytes = idx.dynamic_bytes;
  stats.index_hot_allocs = idx.hot_allocations;
  stats.index_seeded = idx.seeded;
  stats.index_seed_hits = idx.seed_hits;
  // Post-run duplicate audit (§3.5 invariant: one entry per (dst, rpid)).
  stats.index_duplicate_entries = indexes_[group]->duplicate_entries();
  stats.max_depth_observed = detector_.local_max_depth(group);
  return stats;
}

// -------------------------------------------- cross-query cache (§11) --

std::uint64_t MachineRuntime::mint_rpid(Worker& w, int group,
                                        LocalVertexId lv) {
  if (cache_ != nullptr && cache_->cache != nullptr &&
      (*cache_->keys)[static_cast<unsigned>(group)].eligible) {
    const VertexId source = part_->to_global(lv);
    if (stable_rpid_encodable(source)) {
      std::lock_guard<std::mutex> lock(minted_mutex_);
      if (minted_[static_cast<unsigned>(group)].insert(source).second) {
        return make_stable_rpid(source);
      }
    }
  }
  return make_rpid_source(id_, w.id, ++w.rpid_seq);
}

std::uint64_t MachineRuntime::harvest_reach_cache() {
  if (cache_ == nullptr || cache_->cache == nullptr) return 0;
  std::uint64_t harvested = 0;
  for (unsigned g = 0; g < indexes_.size(); ++g) {
    const RpqGroupKey& key = (*cache_->keys)[g];
    if (!key.eligible) continue;
    indexes_[g]->for_each_entry(
        [&](LocalVertexId dst, std::uint64_t rpid, Depth depth) {
          if (!rpid_is_stable(rpid)) return;
          if (cache_->cache->insert(key.hash, stable_rpid_vertex(rpid), dst,
                                    depth, cache_->epoch)) {
            ++harvested;
          }
        });
  }
  return harvested;
}

std::uint64_t MachineRuntime::reach_cache_seeded() const {
  std::uint64_t sum = 0;
  for (const auto& index : indexes_) sum += index->stats().seeded;
  return sum;
}

}  // namespace rpqd
