// One simulated machine of the RPQd cluster (§3.2).
//
// A MachineRuntime owns: its graph partition, the flow-control state, the
// reachability-index slices of every RPQ control stage, the termination
// detector, and per-worker execution state. The engine spawns
// `workers_per_machine` threads per machine, each running worker_main():
//
//   1. eagerly pick up received messages (deepest depth / latest stage
//      first — §3.2 messaging priority),
//   2. otherwise bootstrap the next local vertex into stage 0,
//   3. otherwise flush partial buffers, participate in the termination
//      protocol, and exit once the detector reports global termination.
//
// Traversals are run-to-completion depth-first walks over the plan's
// stage/hop automaton, using an explicit frame stack (no native
// recursion). Remote hops serialize the context into the per-(machine,
// stage, depth) output buffer, acquiring flow-control credits; when
// blocked, the worker processes incoming messages instead (pickup rule
// iii), nested up to a configured depth.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.h"
#include "graph/snapshot.h"
#include "net/network.h"
#include "plan/plan.h"
#include "rpq/reach_cache.h"
#include "rpq/reach_index.h"
#include "runtime/aggregate.h"
#include "runtime/context.h"
#include "runtime/profile.h"
#include "runtime/stats.h"
#include "runtime/termination.h"

namespace rpqd {

class MachineRuntime {
 public:
  /// `cache` (optional) opts this run into the cross-query reachability
  /// cache (DESIGN.md §11): the ctor seeds eligible groups' indexes from
  /// the machine's persistent cache; the engine calls
  /// harvest_reach_cache() after a clean drain.
  MachineRuntime(MachineId id, const PartitionView* partition,
                 const ExecPlan* plan, const EngineConfig* config,
                 Network* network, AbortController* abort,
                 const RunCacheContext* cache = nullptr);

  /// Body of one worker thread. Returns when the query has globally
  /// terminated.
  void worker_main(unsigned worker_index);

  // ---- post-run accessors ----
  std::uint64_t row_count() const;
  std::vector<std::vector<std::string>> take_rows();
  /// Partial GROUP BY aggregates, merged across this machine's workers.
  AggMap merged_agg_rows() const;
  RpqStageStats rpq_stats(unsigned group) const;
  /// Frames entered at `stage` across this machine's workers.
  std::uint64_t stage_visits(StageId stage) const;
  const FlowControl& flow() const { return *flow_; }
  FlowControl& flow() { return *flow_; }
  const TerminationDetector& termination() const { return detector_; }
  TerminationDetector& termination() { return detector_; }
  const ReachabilityIndex& index(unsigned group) const {
    return *indexes_[group];
  }
  /// Merges this machine's worker profile slots, credit accounting, and
  /// termination rounds into the query tree. No-op unless the config had
  /// profiling on. Called once by the engine, after workers join.
  void merge_profile(QueryProfile& out) const;

  /// Persists this run's stable-rpid reachability facts into the
  /// machine's cross-query cache (eligible groups only; sentinel seeds
  /// that were never visited are skipped). Called by the engine ONLY
  /// after a clean drain — an aborted or truncated run's index may hold
  /// incomplete-at-depth facts and is never harvested. Returns the
  /// number of facts newly persisted.
  std::uint64_t harvest_reach_cache();
  /// Sentinel entries planted at construction (0 with the cache off).
  std::uint64_t reach_cache_seeded() const;

  /// Contexts this machine discarded on the abort path (unsent buffer
  /// contents, unprocessed inbox batches, dropped shared tasks).
  std::uint64_t discarded_contexts() const;
  /// High-water mark of simultaneously-live execution frames — the
  /// max_live_contexts budget's tracked quantity (tracked always).
  std::uint64_t peak_live_contexts() const {
    return peak_live_frames_.load(std::memory_order_relaxed);
  }
  /// Live frames right now; 0 after any clean drain (leak detector).
  std::uint64_t live_contexts() const {
    return live_frames_.load(std::memory_order_relaxed);
  }

 private:
  struct Frame {
    StageId stage = kInvalidStage;
    LocalVertexId current = kInvalidLocalVertex;
    Depth depth = 0;
    std::uint64_t rpid = 0;
    std::uint8_t step = 0;       // kEdge/kInspect/kTransition/kOutput
    std::uint8_t dir_phase = 0;  // neighbor hop: 0 = primary, 1 = reverse
    std::uint32_t label_idx = 0;
    std::size_t cursor = 0;
    std::size_t end = 0;
    bool emit_pending = false;     // control stage
    bool explore_pending = false;  // control stage
    // Slot save/restore window (see RunState::saved): RPQ path stages
    // execute once per depth along a traversal, so a deeper iteration's
    // slot actions must not clobber an ancestor's values after backtrack.
    std::uint32_t saved_base = 0;
    std::uint32_t saved_count = 0;
  };

  /// Per-traversal execution state (the paper's "RPQ context": slots plus
  /// the per-depth frame stack, preallocated and grown on demand).
  struct RunState {
    std::vector<Frame> stack;
    std::vector<Value> slots;
    std::vector<std::pair<SlotId, Value>> saved;  // shadowed slot values
  };

  struct OutBuffer {
    MachineId dest = 0;
    StageId stage = kInvalidStage;
    Depth depth = 0;
    CreditClass credit = CreditClass::kFixed;
    std::uint32_t count = 0;
    // Mirror-expand delegations (DESIGN.md §14): the contexts' vertices
    // are hot GLOBAL ids whose bucket the receiver enumerates instead of
    // entering `stage`. Flushed with kMessageFlagMirror set; buffered
    // separately from ordinary traffic (buffer_key folds the bit in).
    bool mirror = false;
    std::vector<std::byte> payload;
    // Delta-codec state; a buffer is always flushed as one message, so
    // the receiver's fresh decoder state matches.
    ContextCodecState codec;
  };

  struct Worker {
    WorkerId id = 0;
    std::uint64_t rpid_seq = 0;
    unsigned nesting = 0;
    std::atomic<bool> busy{true};
    bool bootstrap_done = false;
    std::size_t bootstrap_cursor = 0;
    std::unordered_map<std::uint64_t, OutBuffer> out;
    // Worker-local statistics (merged after the run; lock-free).
    std::vector<std::vector<std::uint64_t>> matches;     // [group][depth]
    std::vector<std::vector<std::uint64_t>> eliminated;  // [group][depth]
    std::vector<std::vector<std::uint64_t>> duplicated;  // [group][depth]
    std::uint64_t rows = 0;
    std::uint64_t discarded = 0;  // contexts dropped by the abort drain
    // Hot-vertex delegated fan-out (DESIGN.md §14).
    std::uint64_t mirror_fanouts = 0;  // hot frames delegated (send side)
    std::uint64_t mirror_expands = 0;  // delegations expanded (recv side)
    std::vector<std::vector<std::string>> result_rows;
    std::vector<std::uint64_t> stage_visits;  // frames entered per stage
    AggMap agg_rows;  // partial GROUP BY aggregates
    // Profiling slot; null unless the query runs with profiling enabled.
    // `prof == nullptr` is the single branch every disabled-mode hook
    // pays (see runtime/profile.h).
    std::unique_ptr<WorkerProfile> prof;
  };

  // ---- execution ----
  void run_context(Worker& w, StageId stage, VertexId vertex, Depth depth,
                   std::uint64_t rpid, std::vector<Value> slots);
  bool enter_stage(Worker& w, RunState& rs, StageId stage, LocalVertexId lv,
                   Depth depth, std::uint64_t rpid, bool from_increment);
  void step(Worker& w, RunState& rs);
  bool next_neighbor(Frame& f, const StagePlan& sp, std::size_t& out_idx,
                     const ViewAdjacency** out_adj);
  std::size_t edge_multiplicity(LocalVertexId lv, Direction dir,
                                const std::vector<LabelId>& labels,
                                VertexId target) const;
  void output_row(Worker& w, const Frame& f, const std::vector<Value>& slots);
  void pop_frame(RunState& rs);

  // ---- messaging ----
  void send_remote(Worker& w, StageId stage, VertexId vertex, Depth depth,
                   std::uint64_t rpid, const std::vector<Value>& slots);
  /// Shared body of send_remote and mirror delegation: appends one
  /// context to the (dest, stage, depth, mirror) output buffer, acquiring
  /// its credit when the buffer opens. `mirror` buffers carry hot GLOBAL
  /// vertex ids and flush with kMessageFlagMirror.
  void send_to(Worker& w, MachineId dest, StageId stage, VertexId vertex,
               Depth depth, std::uint64_t rpid,
               const std::vector<Value>& slots, bool mirror);
  void flush_buffer(Worker& w, OutBuffer&& buf);
  void flush_all(Worker& w);
  /// Blocks for a credit, processing inbound work meanwhile (pickup rule
  /// iii). Returns nullopt when the query halted (abort or crash) while
  /// blocked — the caller drops the send; the abort drain reclaims
  /// everything else.
  std::optional<CreditClass> acquire_credit_blocking(Worker& w,
                                                     MachineId dest,
                                                     StageId stage,
                                                     Depth depth);
  void process_message(Worker& w, Message msg);

  // ---- cooperative abort (common/abort.h) ----
  /// The worker-side halt poll: this machine learned of the abort via a
  /// kAbort message, or its own crash tick fired. Checked at the same
  /// points that check flow-control credits.
  bool halted() const {
    const Inbox& inbox = net_->inbox(id_);
    return inbox.aborted() || inbox.crashed();
  }
  /// Initiates an abort: first requester fixes the reason on the query's
  /// controller and broadcasts the kAbort control message.
  void trip_abort(AbortReason reason);
  /// Unwinds a halted traversal (balances slot shadows + detector).
  void unwind(RunState& rs);
  /// Post-halt reclamation: returns this worker's out-buffer credits,
  /// discards shared tasks, and (unless this machine crashed) replies
  /// DONE for every still-queued inbound batch.
  void abort_drain(Worker& w);
  // Frame accounting around the termination detector: live/peak counts
  // feed the max_live_contexts budget and the leak audit.
  void note_frame_pushed(StageId stage, int group, Depth depth);
  void note_frame_popped(StageId stage, int group, Depth depth);

  // ---- idle / termination driving ----
  bool machine_idle() const;

  /// Mints the rpid for an RPQ entered from outside. On cache-eligible
  /// runs the FIRST entry per (group, source vertex) on this machine
  /// gets the source's stable rpid (rpq/rpid.h) so its facts can be
  /// seeded/harvested across queries; every later entry from the same
  /// source gets a classic per-worker rpid.
  std::uint64_t mint_rpid(Worker& w, int group, LocalVertexId lv);

  bool vertex_matches(const StagePlan& sp, LocalVertexId lv,
                      const std::vector<Value>& slots) const;
  void apply_actions(const StagePlan& sp, LocalVertexId lv,
                     std::vector<Value>& slots) const;
  int group_of(StageId stage) const { return stage_group_[stage]; }

  EvalCtx eval_ctx(LocalVertexId lv, const std::vector<Value>& slots) const {
    EvalCtx ctx;
    ctx.part = part_;
    ctx.catalog = &part_->catalog();
    ctx.current = lv;
    ctx.slots = slots.data();
    return ctx;
  }

  // ---- aDFS work sharing (§5 extension) ----
  /// Tries to offload a local child traversal to an idle peer worker.
  /// Returns false when sharing is off, no peer is idle, or the queue is
  /// full — the caller then recurses as usual.
  bool try_share_local(Worker& w, StageId stage, VertexId vertex, Depth depth,
                       std::uint64_t rpid, const std::vector<Value>& slots);

  // ---- hot-vertex delegated fan-out (DESIGN.md §14) ----
  /// Delegation gate for a kNeighbor frame whose current vertex is hot:
  /// sends ONE mirror-expand context per peer machine with a non-empty
  /// bucket for this hop's direction(s), so each peer enumerates its
  /// pre-bucketed slice of the hot adjacency locally instead of
  /// receiving one message per remote neighbor. Returns true when the
  /// frame is delegated (the caller then skips non-owned destinations in
  /// its own enumeration); false leaves the frame on the normal path.
  /// Exactness: the cluster-wide multiset of enter_stage(hop.to, dst)
  /// calls is identical to the undelegated run — only the message count
  /// changes — so results, dedup, and the differential harness all hold.
  bool mirror_delegate(Worker& w, Frame& f, const StagePlan& sp,
                       const std::vector<Value>& slots);
  /// Receive side: enumerates this machine's bucket of `hot_vertex`'s
  /// adjacency for `stage`'s hop and runs each owned destination to
  /// completion (frameless analogue of run_context — it must NOT
  /// re-enter `stage`, whose visit already happened at the delegator).
  void run_mirror_expand(Worker& w, StageId stage, VertexId hot_vertex,
                         Depth depth, std::uint64_t rpid,
                         std::vector<Value> slots);

  MachineId id_;
  const PartitionView* part_;
  const ExecPlan* plan_;
  const EngineConfig* config_;
  // Static half of the delegation gate (knob on + snapshot has mirrors);
  // the dynamic half (peers armed via kMirrorRefresh) is polled per hot
  // frame. False keeps the traversal hot path byte-identical to §13.
  bool mirror_armed_ = false;
  Network* net_;
  AbortController* abort_;
  // Cross-query cache participation (null = cache off for this run).
  const RunCacheContext* cache_ = nullptr;
  std::mutex minted_mutex_;
  std::vector<std::unordered_set<VertexId>> minted_;  // [group] stable mints
  std::atomic<std::uint64_t> live_frames_{0};
  std::atomic<std::uint64_t> peak_live_frames_{0};
  std::unique_ptr<FlowControl> flow_;
  TerminationDetector detector_;
  std::vector<std::unique_ptr<ReachabilityIndex>> indexes_;
  std::vector<int> stage_group_;  // stage -> rpq index_id, or -1
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> done_{false};
  // aDFS: machine-local shared task queue + statistics.
  MpmcQueue<Context> shared_tasks_;
  std::atomic<std::uint32_t> shared_queued_{0};
  std::atomic<std::uint64_t> shared_total_{0};

 public:
  /// Number of traversals offloaded via aDFS work sharing (stats).
  std::uint64_t shared_task_count() const {
    return shared_total_.load(std::memory_order_relaxed);
  }
  /// Hot-vertex frames whose remote fan-out was delegated to peers'
  /// mirrors, and delegations this machine expanded (DESIGN.md §14).
  std::uint64_t mirror_fanout_count() const {
    std::uint64_t total = 0;
    for (const auto& w : workers_) total += w->mirror_fanouts;
    return total;
  }
  std::uint64_t mirror_expand_count() const {
    std::uint64_t total = 0;
    for (const auto& w : workers_) total += w->mirror_expands;
    return total;
  }
  /// Frames entered across ALL stages on this machine — the per-machine
  /// load quantity the §14 imbalance ratio is computed over.
  std::uint64_t total_stage_visits() const {
    std::uint64_t total = 0;
    for (const auto& w : workers_) {
      for (const std::uint64_t v : w->stage_visits) total += v;
    }
    return total;
  }
};

}  // namespace rpqd
