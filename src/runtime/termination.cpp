#include "runtime/termination.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"
#include "common/serialize.h"

namespace rpqd {

TerminationDetector::TerminationDetector(MachineId self,
                                         unsigned num_machines,
                                         unsigned num_stages,
                                         unsigned num_groups)
    : self_(self),
      num_machines_(num_machines),
      num_stages_(num_stages),
      num_groups_(num_groups),
      stage_sent_(num_stages),
      stage_processed_(num_stages),
      stage_active_(num_stages),
      group_counters_(num_groups),
      last_(num_machines),
      prev_(num_machines) {
  for (auto& a : stage_sent_) a.store(0, std::memory_order_relaxed);
  for (auto& a : stage_processed_) a.store(0, std::memory_order_relaxed);
  for (auto& a : stage_active_) a.store(0, std::memory_order_relaxed);
}

void TerminationDetector::note_sent(StageId stage, int group, Depth depth,
                                    std::uint64_t n) {
  stage_sent_[stage].fetch_add(n, std::memory_order_relaxed);
  if (group >= 0) {
    std::lock_guard lock(group_mutex_);
    auto& depths = group_counters_[static_cast<unsigned>(group)];
    if (depth >= depths.size()) depths.resize(depth + 1, {0, 0, 0});
    depths[depth][0] += n;
  }
}

void TerminationDetector::note_processed(StageId stage, int group, Depth depth,
                                         std::uint64_t n) {
  stage_processed_[stage].fetch_add(n, std::memory_order_relaxed);
  if (group >= 0) {
    std::lock_guard lock(group_mutex_);
    auto& depths = group_counters_[static_cast<unsigned>(group)];
    if (depth >= depths.size()) depths.resize(depth + 1, {0, 0, 0});
    depths[depth][1] += n;
  }
}

void TerminationDetector::frame_pushed(StageId stage, int group, Depth depth) {
  stage_active_[stage].fetch_add(1, std::memory_order_seq_cst);
  if (group >= 0) {
    std::lock_guard lock(group_mutex_);
    auto& depths = group_counters_[static_cast<unsigned>(group)];
    if (depth >= depths.size()) depths.resize(depth + 1, {0, 0, 0});
    ++depths[depth][2];
  }
}

void TerminationDetector::frame_popped(StageId stage, int group, Depth depth) {
  stage_active_[stage].fetch_sub(1, std::memory_order_seq_cst);
  if (group >= 0) {
    std::lock_guard lock(group_mutex_);
    auto& depths = group_counters_[static_cast<unsigned>(group)];
    engine_check(depth < depths.size() && depths[depth][2] > 0,
                 "frame_popped without matching push");
    --depths[depth][2];
  }
}

TermStatus TerminationDetector::build_status() const {
  TermStatus s;
  s.idle = idle_.load(std::memory_order_seq_cst);
  s.stages.resize(num_stages_);
  for (unsigned i = 0; i < num_stages_; ++i) {
    s.stages[i] = {stage_sent_[i].load(std::memory_order_relaxed),
                   stage_processed_[i].load(std::memory_order_relaxed),
                   static_cast<std::uint64_t>(std::max<std::int64_t>(
                       0, stage_active_[i].load(std::memory_order_seq_cst)))};
  }
  {
    std::lock_guard lock(group_mutex_);
    s.groups = group_counters_;
  }
  return s;
}

namespace {

std::vector<std::byte> serialize_status(const TermStatus& s) {
  std::vector<std::byte> out;
  BinaryWriter w(out);
  w.write_varint(s.seq);
  w.write<std::uint8_t>(s.idle ? 1 : 0);
  w.write_varint(s.stages.size());
  for (const auto& t : s.stages) {
    for (const auto v : t) w.write_varint(v);
  }
  w.write_varint(s.groups.size());
  for (const auto& g : s.groups) {
    w.write_varint(g.size());
    for (const auto& t : g) {
      for (const auto v : t) w.write_varint(v);
    }
  }
  return out;
}

TermStatus deserialize_status(std::span<const std::byte> payload) {
  BinaryReader r(payload);
  TermStatus s;
  s.seq = r.read_varint();
  s.idle = r.read<std::uint8_t>() != 0;
  s.stages.resize(r.read_varint());
  for (auto& t : s.stages) {
    for (auto& v : t) v = r.read_varint();
  }
  s.groups.resize(r.read_varint());
  for (auto& g : s.groups) {
    g.resize(r.read_varint());
    for (auto& t : g) {
      for (auto& v : t) v = r.read_varint();
    }
  }
  return s;
}

}  // namespace

void TerminationDetector::store_status(MachineId machine, TermStatus status) {
  std::lock_guard lock(status_mutex_);
  auto& last = last_[machine];
  auto& prev = prev_[machine];
  if (last && status.seq == last->seq) return;  // duplicate
  if (prev && status.seq <= prev->seq) return;  // stale
  if (!last || status.seq > last->seq) {
    prev = std::move(last);
    last = std::move(status);
    return;
  }
  // Reordered but novel: newer than `prev` (or `prev` is empty) yet
  // older than `last`. The §13 retransmission layer can deliver a lost
  // broadcast after its successor; it still fills the
  // second-confirmation slot. Dropping it instead wedges the decision:
  // a sender whose final two (identical) statuses arrive inverted would
  // be judged unstable forever once it terminates and stops
  // broadcasting.
  prev = std::move(status);
}

void TerminationDetector::on_status(const Message& msg) {
  store_status(msg.header.src, deserialize_status(msg.payload));
}

void TerminationDetector::maybe_broadcast(Network& net, bool force) {
  TermStatus status = build_status();
  {
    std::lock_guard lock(status_mutex_);
    if (broadcast_valid_ && !force &&
        status.counters_equal(last_broadcast_)) {
      return;
    }
    status.seq = ++seq_;
    last_broadcast_ = status;
    broadcast_valid_ = true;
  }
  broadcast_rounds_.fetch_add(1, std::memory_order_relaxed);
  // Record our own status as if received (uniform decision input).
  store_status(self_, status);
  const auto payload = serialize_status(status);
  for (unsigned m = 0; m < num_machines_; ++m) {
    if (m == self_) continue;
    Message msg;
    msg.header.type = MessageType::kTermination;
    msg.header.src = self_;
    msg.payload = payload;
    net.send(static_cast<MachineId>(m), std::move(msg));
  }
}

bool TerminationDetector::machine_stable(MachineId m) const {
  const auto& last = last_[m];
  const auto& prev = prev_[m];
  return last && prev && last->idle && prev->idle &&
         last->counters_equal(*prev);
}

bool TerminationDetector::globally_terminated() const {
  std::lock_guard lock(status_mutex_);
  std::vector<std::uint64_t> sent(num_stages_, 0);
  std::vector<std::uint64_t> processed(num_stages_, 0);
  std::uint64_t active = 0;
  for (unsigned m = 0; m < num_machines_; ++m) {
    if (!machine_stable(static_cast<MachineId>(m))) return false;
    const TermStatus& s = *last_[m];
    for (unsigned i = 0; i < s.stages.size() && i < num_stages_; ++i) {
      sent[i] += s.stages[i][0];
      processed[i] += s.stages[i][1];
      active += s.stages[i][2];
    }
  }
  if (active != 0) return false;
  for (unsigned i = 0; i < num_stages_; ++i) {
    if (sent[i] != processed[i]) return false;
  }
  return true;
}

unsigned TerminationDetector::terminated_stage_prefix() const {
  std::lock_guard lock(status_mutex_);
  for (unsigned s = 0; s < num_stages_; ++s) {
    std::uint64_t sent = 0;
    std::uint64_t processed = 0;
    std::uint64_t active = 0;
    for (unsigned m = 0; m < num_machines_; ++m) {
      const auto& last = last_[m];
      const auto& prev = prev_[m];
      if (!last || !prev) return s;
      if (s >= last->stages.size() || s >= prev->stages.size()) return s;
      // Per-stage stability: this stage's triple unchanged between the
      // two most recent statuses of machine m.
      if (last->stages[s] != prev->stages[s]) return s;
      sent += last->stages[s][0];
      processed += last->stages[s][1];
      active += last->stages[s][2];
    }
    if (sent != processed || active != 0) return s;
  }
  return num_stages_;
}

bool TerminationDetector::depth_terminated(unsigned group, Depth depth) const {
  std::lock_guard lock(status_mutex_);
  for (Depth d = 0; d <= depth; ++d) {
    std::uint64_t sent = 0;
    std::uint64_t processed = 0;
    std::uint64_t active = 0;
    for (unsigned m = 0; m < num_machines_; ++m) {
      const auto& last = last_[m];
      const auto& prev = prev_[m];
      if (!last || !prev) return false;
      const auto triple_of = [&](const TermStatus& s)
          -> std::array<std::uint64_t, 3> {
        if (group >= s.groups.size() || d >= s.groups[group].size()) {
          return {0, 0, 0};
        }
        return s.groups[group][d];
      };
      const auto lt = triple_of(*last);
      if (lt != triple_of(*prev)) return false;  // not stable at this depth
      sent += lt[0];
      processed += lt[1];
      active += lt[2];
    }
    if (sent != processed || active != 0) return false;
  }
  return true;
}

std::optional<Depth> TerminationDetector::consensus_max_depth(
    unsigned group) const {
  const bool dbg = std::getenv("RPQD_TERM_DEBUG") != nullptr;
  {
    std::lock_guard lock(status_mutex_);
    for (unsigned m = 0; m < num_machines_; ++m) {
      if (!machine_stable(static_cast<MachineId>(m))) {
        if (dbg) {
          const auto& last = last_[m];
          const auto& prev = prev_[m];
          std::fprintf(stderr,
                       "[term] m=%u not stable: last=%d prev=%d lidle=%d "
                       "pidle=%d eq=%d\n",
                       m, last.has_value(), prev.has_value(),
                       last ? last->idle : -1, prev ? prev->idle : -1,
                       (last && prev) ? last->counters_equal(*prev) : -1);
        }
        return std::nullopt;
      }
    }
  }
  Depth max_depth = 0;
  bool any = false;
  {
    std::lock_guard lock(status_mutex_);
    for (unsigned m = 0; m < num_machines_; ++m) {
      const TermStatus& s = *last_[m];
      if (group < s.groups.size() && !s.groups[group].empty()) {
        max_depth = std::max(
            max_depth, static_cast<Depth>(s.groups[group].size() - 1));
        any = true;
      }
    }
  }
  if (!any) {
    if (dbg) std::fprintf(stderr, "[term] group=%u no counters anywhere\n",
                          group);
    return std::nullopt;
  }
  if (!depth_terminated(group, max_depth)) {
    if (dbg) {
      std::fprintf(stderr, "[term] group=%u depth_terminated(%u) false\n",
                   group, static_cast<unsigned>(max_depth));
    }
    return std::nullopt;
  }
  return max_depth;
}

Depth TerminationDetector::local_max_depth(unsigned group) const {
  std::lock_guard lock(group_mutex_);
  if (group >= group_counters_.size() || group_counters_[group].empty()) {
    return 0;
  }
  return static_cast<Depth>(group_counters_[group].size() - 1);
}

std::string TerminationDetector::debug_string() const {
  std::lock_guard lock(status_mutex_);
  std::string out;
  char buf[128];
  for (unsigned m = 0; m < num_machines_; ++m) {
    const auto sum = [](const std::optional<TermStatus>& s) {
      std::array<std::uint64_t, 3> t{0, 0, 0};
      if (s) {
        for (const auto& st : s->stages) {
          t[0] += st[0];
          t[1] += st[1];
          t[2] += st[2];
        }
      }
      return t;
    };
    const auto l = sum(last_[m]);
    const auto p = sum(prev_[m]);
    std::snprintf(
        buf, sizeof(buf), "m%u{last=#%llu i%d %llu/%llu/%llu prev=#%llu} ", m,
        last_[m] ? (unsigned long long)last_[m]->seq : 0ull,
        last_[m] ? (int)last_[m]->idle : -1, (unsigned long long)l[0],
        (unsigned long long)l[1], (unsigned long long)l[2],
        prev_[m] ? (unsigned long long)prev_[m]->seq : 0ull);
    out += buf;
    if (prev_[m] && last_[m] && !last_[m]->counters_equal(*prev_[m])) {
      out += "!eq ";
    }
    (void)p;
  }
  return out;
}

}  // namespace rpqd
