#include "runtime/engine.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <thread>

#include "common/stopwatch.h"
#include "pgql/parser.h"
#include "plan/planner.h"
#include "rpq/cache_key.h"
#include "runtime/aggregate.h"
#include "runtime/machine.h"

namespace rpqd {

DistributedEngine::DistributedEngine(
    std::shared_ptr<const PartitionedGraph> graph, EngineConfig config)
    : graph_(std::move(graph)), config_(config) {
  config_.num_machines = graph_->num_machines();
  snapshot_ = GraphSnapshot::initial(graph_);
}

std::shared_ptr<const GraphSnapshot> DistributedEngine::current_snapshot()
    const {
  std::lock_guard lock(snapshot_mutex_);
  return snapshot_;
}

void DistributedEngine::install_snapshot(
    std::shared_ptr<const GraphSnapshot> snapshot) {
  engine_check(snapshot != nullptr, "install_snapshot(nullptr)");
  std::lock_guard lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
}

// ------------------------------------------------------------ RunControl --

bool RunControl::cancel(AbortReason reason) {
  std::lock_guard lock(mutex_);
  if (finished_) return false;
  if (ctrl_ == nullptr) {
    // Not attached yet (queued, or racing the dispatch): record the
    // reason; attach() applies it before any worker starts.
    if (pending_ == AbortReason::kNone) pending_ = reason;
    return true;
  }
  if (ctrl_->request(reason)) net_->broadcast_abort(reason);
  return true;
}

void RunControl::attach(AbortController* ctrl, Network* net) {
  std::lock_guard lock(mutex_);
  ctrl_ = ctrl;
  net_ = net;
  if (pending_ != AbortReason::kNone && ctrl_->request(pending_)) {
    net_->broadcast_abort(pending_);
  }
}

void RunControl::detach() {
  std::lock_guard lock(mutex_);
  ctrl_ = nullptr;
  net_ = nullptr;
  finished_ = true;
}

EngineConfig DistributedEngine::config_snapshot() const {
  std::lock_guard lock(config_mutex_);
  return config_;
}

void DistributedEngine::set_fault_plan(const FaultPlan& plan) {
  std::lock_guard lock(config_mutex_);
  config_.fault_plan = plan;
}

namespace {

/// Strips an optional leading case-insensitive `PROFILE` token (followed
/// by whitespace) off the query text; returns whether it was present.
bool strip_profile_prefix(std::string_view& pgql) {
  std::string_view text = pgql;
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  constexpr std::string_view kToken = "PROFILE";
  if (text.size() <= kToken.size()) return false;
  for (std::size_t i = 0; i < kToken.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) != kToken[i]) {
      return false;
    }
  }
  if (!std::isspace(static_cast<unsigned char>(text[kToken.size()]))) {
    return false;
  }
  pgql = text.substr(kToken.size());
  return true;
}

}  // namespace

QueryResult DistributedEngine::execute(std::string_view pgql) {
  const bool profile = strip_profile_prefix(pgql) || config_snapshot().profile;
  const pgql::Query query = pgql::parse(pgql);
  const ExecPlan plan = plan_query(query, graph_->catalog());
  return run_plan(plan, profile);
}

std::shared_ptr<const ExecPlan> DistributedEngine::compile(
    std::string_view pgql, bool* profile_out) const {
  const bool profile = strip_profile_prefix(pgql);
  if (profile_out != nullptr) *profile_out = profile;
  const pgql::Query query = pgql::parse(pgql);
  return std::make_shared<const ExecPlan>(
      plan_query(query, graph_->catalog()));
}

std::string DistributedEngine::explain(std::string_view pgql) const {
  const pgql::Query query = pgql::parse(pgql);
  const ExecPlan plan = plan_query(query, graph_->catalog());
  return plan.explain;
}

QueryResult DistributedEngine::execute_plan(const ExecPlan& plan) {
  return run_plan(plan, config_snapshot().profile);
}

QueryResult DistributedEngine::execute_plan(const ExecPlan& plan,
                                            const EngineConfig& cfg,
                                            RunControl* rc) {
  return run_plan_cfg(plan, cfg, rc, nullptr);
}

QueryResult DistributedEngine::execute_plan(
    const ExecPlan& plan, const EngineConfig& cfg, RunControl* rc,
    std::shared_ptr<const GraphSnapshot> snapshot) {
  return run_plan_cfg(plan, cfg, rc, std::move(snapshot));
}

QueryResult DistributedEngine::run_plan(const ExecPlan& plan, bool profile) {
  // Per-query effective config: the PROFILE prefix (or a prepared query
  // on an engine whose profile flag changed) must not mutate the engine's
  // shared configuration under concurrent executions.
  EngineConfig cfg = config_snapshot();
  cfg.profile = profile;
  return run_plan_cfg(plan, std::move(cfg), nullptr, nullptr);
}

QueryResult DistributedEngine::run_plan_cfg(
    const ExecPlan& plan, EngineConfig cfg, RunControl* rc,
    std::shared_ptr<const GraphSnapshot> snap) {
  // Pin the snapshot for the whole run (blocking path pins here; the
  // scheduler pins earlier, at admission, and passes it in). Every
  // machine traverses exactly this epoch; concurrent apply_update builds
  // new snapshots without touching this one.
  if (snap == nullptr) snap = current_snapshot();
  const unsigned num_machines = graph_->num_machines();
  const bool profile = cfg.profile;
  Stopwatch timer;

  // Crash-stop plans fire on exactly one run (FaultPlan::crash_run):
  // stamp this run's index; the counter restarts when a new schedule is
  // installed (Database::set_fault_schedule). The counter is shared by
  // every concurrent query on purpose — the simulated cluster loses a
  // machine once per schedule, so exactly one run of a concurrent wave
  // is the victim.
  cfg.fault_plan.run_index =
      fault_run_seq_.fetch_add(1, std::memory_order_relaxed);

  Network net(num_machines);
  // Sender-side fault injection (sequence stamping, duplication); each
  // MachineRuntime arms its own inbox's receiver side on construction.
  net.set_fault_plan(cfg.fault_plan);
  // Unique epoch per run: in-flight data of an aborted run can never be
  // picked up by a later query on this engine (its epoch won't match).
  net.set_epoch(epoch_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  AbortController abort;
  // Reliable delivery (DESIGN.md §13): armed when the plan can drop or
  // corrupt messages, or when cfg forces it for overhead measurement.
  // Must follow set_fault_plan (it reads the plan's lossiness) and
  // precede any traffic. The abort controller is the escalation target
  // for links whose retransmit budget runs dry.
  net.configure_reliability(ReliableConfig{
      cfg.reliable_transport, cfg.max_retransmits,
      cfg.retransmit_timeout_ticks, cfg.ack_idle_ticks});
  net.attach_abort(&abort);

  // Cross-query reachability cache (DESIGN.md §11): build this run's
  // per-machine contexts before the machines — their ctors seed eligible
  // groups' indexes from the caches. Off unless the byte budget is set;
  // also off when the §3.5 index itself is off (nothing to seed into)
  // and at >= 255 machines (the stable-rpid marker byte — rpq/rpid.h).
  const bool cache_on = cfg.reach_cache_max_bytes > 0 &&
                        cfg.use_reachability_index &&
                        plan.num_rpq_indexes > 0 && num_machines < 255;
  std::vector<RpqGroupKey> group_keys;
  std::vector<RunCacheContext> cache_ctx;
  if (cache_on) {
    ensure_reach_caches(cfg.reach_cache_max_bytes);
    group_keys = rpq_group_cache_keys(plan);
    cache_ctx.resize(num_machines);
    for (unsigned m = 0; m < num_machines; ++m) {
      cache_ctx[m] = RunCacheContext{reach_caches_[m].get(), &group_keys,
                                     reach_caches_[m]->epoch()};
    }
  }

  std::vector<std::unique_ptr<MachineRuntime>> machines;
  machines.reserve(num_machines);
  for (unsigned m = 0; m < num_machines; ++m) {
    machines.push_back(std::make_unique<MachineRuntime>(
        static_cast<MachineId>(m), &snap->view(m), &plan, &cfg,
        &net, &abort, cache_on ? &cache_ctx[m] : nullptr));
  }

  // Hot-vertex mirror arming (DESIGN.md §14): broadcast after the
  // machines exist but BEFORE any worker thread starts, so readiness is
  // deterministic — a delegating sender requires every peer armed, and
  // the synchronous pushes here guarantee it for the whole run.
  if (cfg.hot_mirror_fanout && snap->mirror_set() != nullptr) {
    net.broadcast_mirror_refresh(snap->mirror_set()->version());
  }

  {
    std::lock_guard lock(active_mutex_);
    active_runs_.push_back(ActiveRun{&abort, &net});
  }
  // Targeted cancellation (scheduler path): attach after the machines
  // exist so a pre-dispatch cancel's pending reason broadcasts into live
  // inboxes and halts the workers before they do real work.
  if (rc != nullptr) rc->attach(&abort, &net);

  {
    // Deadline / failure-detector monitor: only spawned when something
    // can actually fire (a deadline is set, or this run arms a crash).
    std::atomic<bool> run_done{false};
    std::thread monitor;
    if (cfg.query_deadline_ms > 0 || net.crash_armed()) {
      monitor = std::thread([&] {
        while (!run_done.load(std::memory_order_acquire)) {
          if (cfg.query_deadline_ms > 0 &&
              timer.elapsed_ms() >
                  static_cast<double>(cfg.query_deadline_ms) &&
              abort.request(AbortReason::kDeadline)) {
            net.broadcast_abort(AbortReason::kDeadline);
          }
          // Simulated failure detector: a machine whose crash tick fired
          // stops participating; the survivors must not hang on it.
          if (net.any_crashed() &&
              abort.request(AbortReason::kMachineFailure)) {
            net.broadcast_abort(AbortReason::kMachineFailure);
          }
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      });
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_machines) *
                    cfg.workers_per_machine);
    for (unsigned m = 0; m < num_machines; ++m) {
      for (unsigned w = 0; w < cfg.workers_per_machine; ++w) {
        threads.emplace_back(
            [&machines, m, w] { machines[m]->worker_main(w); });
      }
    }
    for (auto& t : threads) t.join();
    run_done.store(true, std::memory_order_release);
    if (monitor.joinable()) monitor.join();
  }

  if (rc != nullptr) rc->detach();
  {
    std::lock_guard lock(active_mutex_);
    active_runs_.erase(
        std::remove_if(active_runs_.begin(), active_runs_.end(),
                       [&](const ActiveRun& r) { return r.ctrl == &abort; }),
        active_runs_.end());
  }

  const bool was_aborted = abort.armed();
  std::uint64_t net_discarded = 0;
  if (was_aborted) {
    // Reclaim what the halted workers left in the fabric: limbo DONEs
    // deliver (credits), and every stranded data message's credit is
    // returned straight to its sender's flow control. After this the
    // cluster-wide credit audit must read zero outstanding.
    for (unsigned m = 0; m < num_machines; ++m) {
      const auto leftovers = net.inbox(m).drain_aborted(net.stats());
      for (const auto& msg : leftovers) {
        machines[msg.header.src]->flow().release(static_cast<MachineId>(m),
                                                 msg.header.stage,
                                                 msg.header.credit_depth,
                                                 msg.header.credit);
        net_discarded += msg.header.count;
      }
    }
  } else {
    // Force-deliver any DONE messages still held back by fault injection,
    // so the credit-leak audit below sees the fabric fully drained.
    for (unsigned m = 0; m < num_machines; ++m) {
      net.inbox(m).drain_faults(net.stats());
    }
  }
  // Reliable-transport drain (both paths): resolve the unacked rings.
  // Undelivered DONEs release their credits inside drain_reliable (legal
  // even on clean runs — termination proves sent == processed, not
  // credits-home); undelivered data is only possible when the run
  // aborted, and its senders' credits are released here exactly like
  // drain_aborted leftovers.
  {
    auto undelivered = net.drain_reliable();
    engine_check(was_aborted || undelivered.empty(),
                 "data message lost in flight survived clean termination");
    for (auto& [dest, msg] : undelivered) {
      machines[msg.header.src]->flow().release(dest, msg.header.stage,
                                               msg.header.credit_depth,
                                               msg.header.credit);
      net_discarded += msg.header.count;
    }
  }

  QueryResult result;
  result.explain = plan.explain;
  result.columns = plan.column_names;
  result.aborted = was_aborted;
  result.abort_reason = abort.reason();
  result.truncated = abort.truncated();
  if (!result.aborted && result.truncated) {
    // Satellite of the lifecycle work: the depth safety valve used to
    // truncate silently; surface it through the reason channel.
    result.abort_reason = AbortReason::kDepthTruncated;
  }
  for (auto& machine : machines) {
    result.count += machine->row_count();
    if (!plan.count_star && !plan.has_aggregates) {
      auto rows = machine->take_rows();
      for (auto& row : rows) result.rows.push_back(std::move(row));
    }
  }
  if (plan.has_aggregates) {
    // Merge the per-machine partial aggregates and render the final rows
    // in SELECT order.
    std::vector<pgql::AggKind> kinds;
    for (const auto& spec : plan.aggregates) kinds.push_back(spec.kind);
    AggMap merged;
    for (auto& machine : machines) {
      merge_agg_maps(merged, machine->merged_agg_rows(), kinds,
                     graph_->catalog());
    }
    for (const auto& [key, row] : merged) {
      (void)key;
      std::vector<std::string> out_row;
      out_row.reserve(plan.select_layout.size());
      for (const auto& [is_agg, index] : plan.select_layout) {
        if (is_agg) {
          out_row.push_back(
              row.states[index].render(kinds[index], graph_->catalog()));
        } else {
          out_row.push_back(row.keys[index]);
        }
      }
      result.rows.push_back(std::move(out_row));
    }
    result.count = result.rows.size();
  }

  RuntimeStats& stats = result.stats;
  stats.elapsed_ms = timer.elapsed_ms();
  stats.snapshot_epoch = snap->epoch();
  stats.credit_partition_share = cfg.credit_partition_share;
  stats.output_rows = result.count;
  stats.data_messages = net.stats().data_messages.load();
  stats.done_messages = net.stats().done_messages.load();
  stats.term_messages = net.stats().term_messages.load();
  stats.bytes_sent = net.stats().bytes.load();
  stats.contexts_sent = net.stats().contexts.load();
  // Per-machine high-water mark: max over the machines' own peaks, not
  // the peak of the cluster-wide sum (NetStats.peak_queued_bytes) —
  // machines peaking at different times must not be added together.
  stats.peak_queued_bytes = net.max_peak_queued_bytes();
  stats.faults_delayed = net.stats().faults_delayed.load();
  stats.faults_duplicated = net.stats().faults_duplicated.load();
  stats.faults_dup_dropped = net.stats().faults_dup_dropped.load();
  stats.faults_stalls = net.stats().faults_stalls.load();
  stats.abort_messages = net.stats().abort_messages.load();
  stats.blackholed_messages = net.stats().blackholed_messages.load();
  stats.epoch_dropped = net.stats().epoch_dropped.load();
  stats.faults_lost = net.stats().faults_lost.load();
  stats.faults_corrupted = net.stats().faults_corrupted.load();
  stats.retransmits = net.stats().retransmits.load();
  stats.acks_sent = net.stats().acks_sent.load();
  stats.payload_corruptions_detected =
      net.stats().payload_corruptions_detected.load();
  stats.dedup_drops = net.stats().dedup_drops.load();
  stats.contexts_discarded = net_discarded;
  for (auto& machine : machines) {
    stats.contexts_discarded += machine->discarded_contexts();
    stats.peak_live_contexts =
        std::max(stats.peak_live_contexts, machine->peak_live_contexts());
  }
  for (auto& machine : machines) {
    const FlowControlStats fc = machine->flow().stats();
    stats.flow_fast_path += fc.fast_path;
    stats.flow_blocked += fc.blocked;
    stats.flow_shared_used += fc.shared_used;
    stats.flow_overflow_used += fc.overflow_used;
    stats.flow_emergency += fc.emergency_used;
    stats.flow_outstanding += machine->flow().outstanding();
    stats.flow_overflow_outstanding += machine->flow().overflow_outstanding();
    stats.adfs_shared_tasks += machine->shared_task_count();
  }
  // Skew-aware balancing (DESIGN.md §14): delegation counters, the
  // flush-reorder count, and the per-machine load distribution with its
  // imbalance ratio (max/mean of frames entered per machine).
  stats.contexts_redirected = net.load_board().redirects();
  stats.machine_contexts.resize(num_machines, 0);
  std::uint64_t total_visits = 0;
  for (unsigned m = 0; m < num_machines; ++m) {
    stats.mirror_fanouts += machines[m]->mirror_fanout_count();
    stats.mirror_expands += machines[m]->mirror_expand_count();
    stats.machine_contexts[m] = machines[m]->total_stage_visits();
    total_visits += stats.machine_contexts[m];
  }
  if (total_visits > 0) {
    const std::uint64_t max_visits = *std::max_element(
        stats.machine_contexts.begin(), stats.machine_contexts.end());
    stats.load_imbalance = static_cast<double>(max_visits) * num_machines /
                           static_cast<double>(total_visits);
  }
  stats.rpq.resize(plan.num_rpq_indexes);
  for (unsigned g = 0; g < plan.num_rpq_indexes; ++g) {
    for (auto& machine : machines) {
      stats.rpq[g].merge(machine->rpq_stats(g));
    }
    // §3.4 consensus, read back after the run. Every machine freezes its
    // status table at the instant of its own termination decision, and an
    // early decider's table can be stale in zero-sum ways: a peer's
    // per-depth vector extended by balanced frame push/pop excursions
    // does not perturb the sent/processed sums the decision checks, so
    // the decision fires without the extension. The machine that decides
    // last has ingested every final broadcast (term delivery is a direct
    // queue push), so the achieved consensus is the max over deciders.
    std::optional<Depth> consensus;
    for (auto& machine : machines) {
      if (const auto d = machine->termination().consensus_max_depth(g)) {
        consensus = std::max(consensus.value_or(*d), *d);
      }
    }
    stats.rpq[g].consensus_max_depth = consensus;
  }
  for (const auto& r : stats.rpq) {
    stats.reach_cache_seeded += r.index_seeded;
    stats.reach_cache_seed_hits += r.index_seed_hits;
  }
  // Harvest ONLY clean runs: an aborted or truncated run's index holds
  // facts whose exploration was cut short — complete-at-depth cannot be
  // guaranteed, so nothing is persisted (asserted by the differential
  // harness under crash-stop schedules).
  if (cache_on && cfg.reach_cache_harvest && !result.aborted &&
      !result.truncated) {
    for (auto& machine : machines) {
      stats.reach_cache_harvested += machine->harvest_reach_cache();
    }
  }
  // EXPLAIN ANALYZE breakdown.
  stats.stages.resize(plan.stages.size());
  for (StageId s = 0; s < plan.num_stages(); ++s) {
    StageBreakdown& row = stats.stages[s];
    row.note = plan.stages[s].note;
    for (auto& machine : machines) {
      row.visits += machine->stage_visits(s);
      const auto [sent, processed] = machine->termination().stage_totals(s);
      row.remote_out += sent;
      row.remote_in += processed;
    }
  }
  // Profile tree: merge every machine's worker slots post-join, then
  // compute the per-node totals bottom-up.
  result.profile.enabled = profile;
  if (profile) {
    QueryProfile& prof = result.profile;
    prof.stages.resize(plan.stages.size());
    for (StageId s = 0; s < plan.num_stages(); ++s) {
      prof.stages[s].note = plan.stages[s].note;
      prof.stages[s].machines.resize(num_machines);
    }
    prof.machines.resize(num_machines);
    for (auto& machine : machines) machine->merge_profile(prof);
    // Transport work is query-global, not stage-resolved (§13): copy the
    // run's NetStats counters rather than merging worker slots.
    prof.transport.faults_lost = stats.faults_lost;
    prof.transport.faults_corrupted = stats.faults_corrupted;
    prof.transport.retransmits = stats.retransmits;
    prof.transport.acks_sent = stats.acks_sent;
    prof.transport.payload_corruptions_detected =
        stats.payload_corruptions_detected;
    prof.transport.dedup_drops = stats.dedup_drops;
    prof.finish();
  }
  return result;
}

void DistributedEngine::ensure_reach_caches(
    std::uint64_t max_bytes_per_machine) {
  std::lock_guard lock(reach_cache_mutex_);
  if (reach_caches_.empty()) {
    reach_caches_.reserve(graph_->num_machines());
    for (unsigned m = 0; m < graph_->num_machines(); ++m) {
      reach_caches_.push_back(
          std::make_unique<ReachCache>(max_bytes_per_machine));
    }
  } else {
    // The knob may have changed between runs; re-apply (evicts eagerly).
    for (auto& cache : reach_caches_) cache->set_budget(max_bytes_per_machine);
  }
}

void DistributedEngine::bump_reach_cache_epoch() {
  std::lock_guard lock(reach_cache_mutex_);
  for (auto& cache : reach_caches_) cache->bump_epoch();
}

void DistributedEngine::bump_reach_cache_epochs(
    const std::vector<MachineId>& machines) {
  std::lock_guard lock(reach_cache_mutex_);
  for (const MachineId m : machines) {
    if (m < reach_caches_.size()) reach_caches_[m]->bump_epoch();
  }
}

ReachCacheStats DistributedEngine::reach_cache_stats() const {
  std::lock_guard lock(reach_cache_mutex_);
  ReachCacheStats sum;
  for (const auto& cache : reach_caches_) {
    const ReachCacheStats s = cache->stats();
    sum.entries += s.entries;
    sum.bytes += s.bytes;
    sum.inserts += s.inserts;
    sum.refreshed += s.refreshed;
    sum.evicted += s.evicted;
    sum.seed_reads += s.seed_reads;
    sum.epoch_rejects += s.epoch_rejects;
    sum.invalidations += s.invalidations;
  }
  return sum;
}

ReachCache* DistributedEngine::reach_cache(unsigned machine) {
  std::lock_guard lock(reach_cache_mutex_);
  if (machine >= reach_caches_.size()) return nullptr;
  return reach_caches_[machine].get();
}

unsigned DistributedEngine::cancel_all() {
  std::lock_guard lock(active_mutex_);
  for (const ActiveRun& run : active_runs_) {
    // First requester wins per run; if a budget/crash abort beat us the
    // broadcast is already in flight and the run still ends cleanly.
    if (run.ctrl->request(AbortReason::kUserCancel)) {
      run.net->broadcast_abort(AbortReason::kUserCancel);
    }
  }
  return static_cast<unsigned>(active_runs_.size());
}

PreparedQuery DistributedEngine::prepare(std::string_view pgql) {
  const pgql::Query query = pgql::parse(pgql);
  PreparedQuery prepared;
  prepared.engine_ = this;
  prepared.plan_ = std::make_shared<const ExecPlan>(
      plan_query(query, graph_->catalog()));
  return prepared;
}

QueryResult PreparedQuery::run() { return engine_->execute_plan(*plan_); }

}  // namespace rpqd
