// Concurrent multi-query serving: admission control + dispatch (the
// "millions of users" pillar on top of the single-query engine).
//
// The QueryScheduler turns the one-query-at-a-time engine into a
// service. A submission is admitted against the simulated cluster's
// global resource envelope, queued (bounded) when every in-flight slot
// is busy, or rejected with a typed reason; admitted queries run on a
// fixed pool of dispatcher threads, one per in-flight slot. Each
// in-flight query gets:
//
//   - a per-query credit PARTITION of every machine's §3.3 buffer
//     allowance (EngineConfig::credit_partition_share, applied by
//     net/flow_control.h), so a deep query can exhaust only its own
//     slice of buffer memory and a cheap concurrent query never starves
//     behind it — `min_credit_share` is the fairness knob;
//   - a per-query SLICE of the global lifecycle budgets
//     (global_max_live_contexts, global_reach_index_max_bytes mapping
//     onto the PR-4 per-query budgets), so a whole concurrent wave
//     respects the cluster-wide memory ceiling; a query whose own
//     per-query budget could never fit inside the global one is
//     rejected up front (kContextBudget / kReachIndexBudget).
//
// Everything else is isolated per query by construction: every run owns
// its Network / MachineRuntime / FlowControl / reach-index / termination
// namespace, keyed by the query-scoped rpid and a unique run epoch, so
// concurrent runs never share mutable state (see the audit note on
// NetStats in net/network.h). The differential harness pins this: K
// queries in flight under every fault schedule must each match their
// solo runs exactly.
//
// Throughput rationale (the closed-loop bench's headline): a solo query
// leaves the cluster idle during credit stalls and §3.4 termination
// rounds (workers sleep in bounded backoff). With several queries in
// flight those gaps are absorbed by other queries' work, so aggregate
// throughput beats back-to-back serial execution of the same mix.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "runtime/engine.h"
#include "runtime/result_cache.h"

namespace rpqd {

/// What the admission controller decided at submit time.
enum class AdmissionOutcome : std::uint8_t {
  kAdmitted,   // a slot was free; dispatch is immediate
  kQueued,     // all slots busy; waiting in the bounded queue
  kRejected,   // never ran; see AdmissionReject
  kCachedHit,  // served from the result cache; never dispatched
  kCoalesced,  // attached to a live identical execution (single-flight)
};

/// Typed rejection reasons (AdmissionOutcome::kRejected).
enum class AdmissionReject : std::uint8_t {
  kNone = 0,
  kQueueFull,         // in-flight slots and the wait queue are both full
  kContextBudget,     // per-query max_live_contexts can never fit inside
                      // the scheduler's global_max_live_contexts
  kReachIndexBudget,  // same, for reach_index_max_bytes
  kShutdown,          // scheduler is shutting down
};

const char* to_string(AdmissionOutcome outcome);
const char* to_string(AdmissionReject reject);

struct SchedulerConfig {
  /// In-flight query slots (dispatcher threads). Also the denominator of
  /// the default per-query credit partition: each in-flight query's flow
  /// control gets 1/max_inflight of every machine's buffer allowance.
  unsigned max_inflight = 4;

  /// Submissions allowed to wait beyond the in-flight slots before
  /// admission rejects with kQueueFull.
  unsigned max_queued = 64;

  /// Cluster-wide ceiling on simultaneously-live execution contexts
  /// across ALL in-flight queries (0 = off). With a per-query
  /// max_live_contexts configured on the engine, admission caps the slot
  /// count so the sum of per-query budgets fits; without one, each
  /// dispatched query runs with an equal slice as its own budget.
  std::uint64_t global_max_live_contexts = 0;

  /// Cluster-wide ceiling on reachability-index bytes, same semantics.
  std::uint64_t global_reach_index_max_bytes = 0;

  /// Fairness knob for the per-query credit partitions: lower bound on
  /// any query's share of the buffer allowance. 0 = strict equal split
  /// (1/max_inflight). Raising it trades strict isolation for
  /// throughput when slots usually run below capacity.
  double min_credit_share = 0.0;

  /// Disables the credit partitioning entirely (every query sees the
  /// whole allowance, as in single-query mode) — the ablation knob the
  /// fairness bench flips.
  bool partition_credits = true;
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;  // dispatched with a free slot
  std::uint64_t queued = 0;    // waited in the admission queue
  std::uint64_t completed = 0;
  // Result cache (DESIGN.md §11); 0 without a cache.
  std::uint64_t cache_hits = 0;       // served without dispatching
  std::uint64_t cache_coalesced = 0;  // followers of a live flight
  std::uint64_t cache_bypassed = 0;   // stale-epoch probes, ran uncached
  // Deadline lapsed while queued: aborted kDeadline at dispatch, never
  // executed (DESIGN.md §12 — the scheduler re-checks the deadline when
  // the job leaves the FIFO, not just during execution).
  std::uint64_t deadline_lapsed_in_queue = 0;
  std::uint64_t cancelled_while_queued = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_context_budget = 0;
  std::uint64_t rejected_reach_index_budget = 0;
  std::uint64_t rejected_shutdown = 0;
  unsigned peak_inflight = 0;

  std::uint64_t rejected() const {
    return rejected_queue_full + rejected_context_budget +
           rejected_reach_index_budget + rejected_shutdown;
  }
};

namespace detail {
struct QueryJob;
}

/// Move-shareable handle to one submitted query. Obtained from
/// QueryScheduler::submit / Database::submit; redeemed with await().
class QueryTicket {
 public:
  QueryTicket() = default;

  bool valid() const { return job_ != nullptr; }
  std::uint64_t id() const;
  /// Fixed at submit time (kAdmitted / kQueued / kRejected).
  AdmissionOutcome admission() const;
  /// kNone unless admission() == kRejected.
  AdmissionReject reject_reason() const;

 private:
  friend class QueryScheduler;
  explicit QueryTicket(std::shared_ptr<detail::QueryJob> job)
      : job_(std::move(job)) {}
  std::shared_ptr<detail::QueryJob> job_;
};

class QueryScheduler {
 public:
  /// `result_cache` (optional, not owned, must outlive the scheduler)
  /// enables the single-flight result cache on the serving path: a
  /// submission whose normalized text is cached returns a kCachedHit
  /// ticket without dispatching; one whose text is already executing
  /// returns kCoalesced and its await() shares the leader's result —
  /// including the leader's rejection, abort, or exception (a flight is
  /// always completed, never abandoned). Hit/coalesced tickets hold no
  /// dispatcher slot and no run_control (cancel() returns false).
  QueryScheduler(DistributedEngine* engine, SchedulerConfig config,
                 ResultCache* result_cache = nullptr);

  /// Shutdown: rejects everything still queued (their await returns an
  /// admission-reject result), cooperatively cancels in-flight runs
  /// (kUserCancel), and joins the dispatcher pool. Await tickets you
  /// care about before destroying the scheduler.
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Parses, plans, and admits a query. Parse/plan errors throw
  /// QueryError exactly like the blocking path; admission failures do
  /// NOT throw — they return a kRejected ticket whose await() yields
  /// QueryResult{aborted, kAdmissionReject}. A `PROFILE ` prefix
  /// enables per-query profiling, as in the blocking path.
  QueryTicket submit(std::string_view pgql);

  /// Blocks until the query finishes (or its rejection is recorded) and
  /// returns the result. Safe to call from any thread, repeatedly.
  QueryResult await(const QueryTicket& ticket);

  /// Requests cooperative cancellation: a queued query is removed and
  /// completes as aborted without running; an in-flight query goes
  /// through the normal kAbort broadcast. Returns false when the query
  /// already finished (or the ticket is invalid).
  bool cancel(const QueryTicket& ticket,
              AbortReason reason = AbortReason::kUserCancel);

  /// Cancels every queued (not yet dispatched) query; returns how many.
  /// In-flight runs are the engine's cancel_all's job.
  unsigned cancel_all_queued(AbortReason reason = AbortReason::kUserCancel);

  /// Queries currently executing (dispatched, not finished).
  unsigned inflight() const;
  /// Queries currently waiting in the admission queue.
  unsigned queued() const;

  SchedulerStats stats() const;
  const SchedulerConfig& config() const { return config_; }
  /// In-flight slots after the global budgets capped max_inflight
  /// (0 = every submission is rejected up front).
  unsigned slots() const { return slots_; }

 private:
  void dispatcher_main();
  void run_job(const std::shared_ptr<detail::QueryJob>& job);
  /// Builds the job's effective per-query config: engine snapshot +
  /// profile flag + credit partition share + sliced budgets.
  EngineConfig job_config(const detail::QueryJob& job) const;
  /// Completes the job — and, when it leads a result-cache flight, the
  /// flight too (every follower observes the same result, cached only
  /// when clean). Every path that finishes a job goes through here or
  /// fail(), so a flight can never be left pending.
  void fulfill(detail::QueryJob& job, QueryResult result);
  void fail(detail::QueryJob& job, std::exception_ptr error);

  DistributedEngine* engine_;
  SchedulerConfig config_;
  ResultCache* result_cache_;
  unsigned slots_ = 0;
  AdmissionReject zero_slots_reason_ = AdmissionReject::kNone;

  mutable std::mutex mutex_;
  std::condition_variable work_;
  std::deque<std::shared_ptr<detail::QueryJob>> queue_;
  std::vector<std::shared_ptr<detail::QueryJob>> running_;
  bool stopping_ = false;
  unsigned busy_ = 0;
  std::uint64_t next_id_ = 1;
  SchedulerStats stats_;

  std::vector<std::thread> dispatchers_;
};

}  // namespace rpqd
