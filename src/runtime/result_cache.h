// Full-result cache with single-flight coalescing (DESIGN.md §11) and
// epoch coherence for online updates (DESIGN.md §12).
//
// Keyed by (normalized PGQL text, profile flag): `PROFILE Q` and `Q`
// normalize to the same text but are distinct result-cache entries — a
// profiled and an unprofiled ask must never share a result object (the
// profile tree is part of the result).
//
// Single-flight protocol: the first asker of an uncached key becomes the
// LEADER and executes; concurrent askers of the same key become
// FOLLOWERS and block on the leader's flight instead of re-executing.
// A flight is ALWAYS completed — with a result (including rejected and
// aborted results, which are shared but never cached) or with an
// exception — so followers share the leader's fate verbatim and can
// never deadlock on an abandoned flight. Only clean results
// (!aborted && !truncated) are admitted into the LRU store, and only
// when they fit the per-entry admission ceiling.
//
// Epoch coherence: every probe carries the graph epoch its query pinned
// at admission, and the cache tracks the last epoch it was notified of
// (on_graph_update). The update path notifies the cache BEFORE the new
// snapshot is installed, so probe_epoch <= coherent_epoch is an
// invariant — a probe from the future means a graph mutation reached a
// query before it reached this cache, and acquire() aborts loudly
// (engine_check) instead of serving a possibly-stale entry. A probe from
// the PAST (an update published between the query's snapshot pin and its
// cache probe) gets Role::kBypass: execute uncached, admit nothing.
// Flights are stamped with their leader's epoch; an asker with a NEWER
// epoch replaces a stale flight (it becomes the new leader), and a stale
// flight's completion is published to its followers but never admitted
// to the store.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "graph/update.h"
#include "runtime/engine.h"

namespace rpqd {

struct ResultCacheStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hits = 0;        // served straight from the store
  std::uint64_t misses = 0;      // leader executions started
  std::uint64_t coalesced = 0;   // followers attached to a live flight
  std::uint64_t inserts = 0;
  std::uint64_t evicted = 0;
  std::uint64_t rejected_too_big = 0;  // clean but over the admit ceiling
  std::uint64_t rejected_dirty = 0;    // aborted/truncated, never cached
  std::uint64_t invalidations = 0;     // invalidate() calls
  // Online-update coherence (DESIGN.md §12).
  std::uint64_t updates_observed = 0;    // on_graph_update() calls
  std::uint64_t evicted_by_update = 0;   // entries dropped by scope match
  std::uint64_t bypassed_stale = 0;      // probes older than coherent epoch
  std::uint64_t flights_restarted = 0;   // stale flights replaced by newer
  std::uint64_t stale_flight_drops = 0;  // completions refused admission
  std::uint64_t coherent_epoch = 0;      // last epoch the cache heard of
};

/// Conservative byte estimate of a QueryResult's cacheable payload
/// (rendered rows + columns + fixed overhead). Used for both the LRU
/// budget and the admission ceiling.
std::uint64_t estimate_result_bytes(const QueryResult& result);

class ResultCache {
 public:
  /// One in-flight execution of a key. Opaque to callers: obtained from
  /// acquire(), passed back to complete()/complete_error()/await().
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    QueryResult result;
    std::exception_ptr error;
    /// Snapshot epoch the leader pinned; set at acquire() registration,
    /// immutable afterwards (admission + follower-attach gate).
    std::uint64_t epoch = 0;
  };

  enum class Role : std::uint8_t {
    kHit,       // `result` is filled; no flight
    kLeader,    // caller must execute and complete(...) the flight
    kFollower,  // caller must await(...) the flight
    kBypass,    // stale-epoch probe: execute uncached, admit nothing
  };

  struct Lookup {
    Role role = Role::kLeader;
    QueryResult result;                // kHit only
    std::shared_ptr<Flight> flight;    // kLeader / kFollower
  };

  explicit ResultCache(std::uint64_t max_bytes,
                       std::uint64_t admit_max_bytes = 0,
                       std::uint64_t coherent_epoch = 0);

  /// Looks up `(text, profile)` on behalf of a query that pinned
  /// snapshot `epoch`: cached → kHit with a copy of the stored result;
  /// live same-epoch flight → kFollower; stale probe → kBypass;
  /// otherwise registers a new flight (replacing a stale one) and
  /// returns kLeader. engine_check-aborts when `epoch` is NEWER than the
  /// last on_graph_update notification — that is a graph mutation that
  /// bypassed cache invalidation, never a legal interleaving.
  Lookup acquire(const std::string& text, bool profile,
                 std::uint64_t epoch = 0);

  /// Leader hand-off: publishes `result` to every follower of `flight`
  /// and admits it into the store when clean, within budget, still the
  /// registered flight for its key, and current (flight epoch ==
  /// coherent epoch). `scope` is the plan's label footprint for
  /// update-driven eviction; the default (empty) is a wildcard — evicted
  /// by ANY update, the conservative choice.
  void complete(const std::shared_ptr<Flight>& flight,
                const std::string& text, bool profile,
                const QueryResult& result,
                const ResultCacheScope& scope = {});

  /// Leader hand-off for a throwing execution: every follower rethrows.
  void complete_error(const std::shared_ptr<Flight>& flight,
                      const std::string& text, bool profile,
                      std::exception_ptr error);

  /// Follower wait: blocks until the leader completes, then returns a
  /// copy of its result (or rethrows its exception).
  static QueryResult await(const std::shared_ptr<Flight>& flight);

  /// Drops every cached entry unconditionally (budget reconfiguration,
  /// tests). Live flights still publish to their followers; whether
  /// their completion is admitted is governed by the epoch gate in
  /// complete(), not by this call.
  void invalidate();

  /// Update-coherence notification: `epoch` was just created by an
  /// applied batch with dirty scope `dirty`. Evicts exactly the entries
  /// whose footprint intersects the dirty scope and advances the
  /// coherent epoch. MUST be called before the new snapshot is published
  /// to queries (Database::apply_update ordering) — acquire() treats a
  /// probe beyond the coherent epoch as a coherence hole and aborts.
  void on_graph_update(std::uint64_t epoch, const DirtyScope& dirty);

  void set_budget(std::uint64_t max_bytes, std::uint64_t admit_max_bytes);

  ResultCacheStats stats() const;

 private:
  struct Key {
    std::string text;
    bool profile;
    bool operator==(const Key& o) const {
      return profile == o.profile && text == o.text;
    }
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::string>{}(k.text) ^ (k.profile ? 0x9e3779b97f4a7c15ULL : 0);
    }
  };
  struct Node {
    Key key;
    QueryResult result;
    std::uint64_t bytes = 0;
    ResultCacheScope scope;       // label footprint for update eviction
    std::uint64_t epoch = 0;      // epoch the result was computed at
  };

  void evict_to_budget_locked();
  std::uint64_t admit_ceiling_locked() const;
  void retire_flight_locked(const Key& key,
                            const std::shared_ptr<Flight>& flight);

  mutable std::mutex mutex_;
  std::uint64_t max_bytes_;
  std::uint64_t admit_max_bytes_;  // 0 = auto (max_bytes_ / 8)
  std::uint64_t bytes_ = 0;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Node>::iterator, KeyHasher> index_;
  std::unordered_map<Key, std::shared_ptr<Flight>, KeyHasher> flights_;
  ResultCacheStats stats_;
  std::uint64_t coherent_epoch_ = 0;
};

}  // namespace rpqd
