// Full-result cache with single-flight coalescing (DESIGN.md §11).
//
// Keyed by (normalized PGQL text, profile flag): `PROFILE Q` and `Q`
// normalize to the same text but are distinct result-cache entries — a
// profiled and an unprofiled ask must never share a result object (the
// profile tree is part of the result).
//
// Single-flight protocol: the first asker of an uncached key becomes the
// LEADER and executes; concurrent askers of the same key become
// FOLLOWERS and block on the leader's flight instead of re-executing.
// A flight is ALWAYS completed — with a result (including rejected and
// aborted results, which are shared but never cached) or with an
// exception — so followers share the leader's fate verbatim and can
// never deadlock on an abandoned flight. Only clean results
// (!aborted && !truncated) are admitted into the LRU store, and only
// when they fit the per-entry admission ceiling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "runtime/engine.h"

namespace rpqd {

struct ResultCacheStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hits = 0;        // served straight from the store
  std::uint64_t misses = 0;      // leader executions started
  std::uint64_t coalesced = 0;   // followers attached to a live flight
  std::uint64_t inserts = 0;
  std::uint64_t evicted = 0;
  std::uint64_t rejected_too_big = 0;  // clean but over the admit ceiling
  std::uint64_t rejected_dirty = 0;    // aborted/truncated, never cached
  std::uint64_t invalidations = 0;     // invalidate() calls
};

/// Conservative byte estimate of a QueryResult's cacheable payload
/// (rendered rows + columns + fixed overhead). Used for both the LRU
/// budget and the admission ceiling.
std::uint64_t estimate_result_bytes(const QueryResult& result);

class ResultCache {
 public:
  /// One in-flight execution of a key. Opaque to callers: obtained from
  /// acquire(), passed back to complete()/complete_error()/await().
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    QueryResult result;
    std::exception_ptr error;
  };

  enum class Role : std::uint8_t {
    kHit,       // `result` is filled; no flight
    kLeader,    // caller must execute and complete(...) the flight
    kFollower,  // caller must await(...) the flight
  };

  struct Lookup {
    Role role = Role::kLeader;
    QueryResult result;                // kHit only
    std::shared_ptr<Flight> flight;    // kLeader / kFollower
  };

  explicit ResultCache(std::uint64_t max_bytes,
                       std::uint64_t admit_max_bytes = 0);

  /// Looks up `(text, profile)`: cached → kHit with a copy of the stored
  /// result; live flight → kFollower; otherwise registers a new flight
  /// and returns kLeader.
  Lookup acquire(const std::string& text, bool profile);

  /// Leader hand-off: publishes `result` to every follower of `flight`
  /// and admits it into the store when clean and within budget. The
  /// flight is retired either way.
  void complete(const std::shared_ptr<Flight>& flight,
                const std::string& text, bool profile,
                const QueryResult& result);

  /// Leader hand-off for a throwing execution: every follower rethrows.
  void complete_error(const std::shared_ptr<Flight>& flight,
                      const std::string& text, bool profile,
                      std::exception_ptr error);

  /// Follower wait: blocks until the leader completes, then returns a
  /// copy of its result (or rethrows its exception).
  static QueryResult await(const std::shared_ptr<Flight>& flight);

  /// Drops every cached entry (live flights are unaffected — they were
  /// admitted under the old epoch and complete normally, but a flight
  /// completing after invalidate() is still cached: its result was
  /// computed from the current graph, which is immutable).
  void invalidate();

  void set_budget(std::uint64_t max_bytes, std::uint64_t admit_max_bytes);

  ResultCacheStats stats() const;

 private:
  struct Key {
    std::string text;
    bool profile;
    bool operator==(const Key& o) const {
      return profile == o.profile && text == o.text;
    }
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::string>{}(k.text) ^ (k.profile ? 0x9e3779b97f4a7c15ULL : 0);
    }
  };
  struct Node {
    Key key;
    QueryResult result;
    std::uint64_t bytes = 0;
  };

  void evict_to_budget_locked();
  std::uint64_t admit_ceiling_locked() const;
  void retire_flight_locked(const Key& key,
                            const std::shared_ptr<Flight>& flight);

  mutable std::mutex mutex_;
  std::uint64_t max_bytes_;
  std::uint64_t admit_max_bytes_;  // 0 = auto (max_bytes_ / 8)
  std::uint64_t bytes_ = 0;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Node>::iterator, KeyHasher> index_;
  std::unordered_map<Key, std::shared_ptr<Flight>, KeyHasher> flights_;
  ResultCacheStats stats_;
};

}  // namespace rpqd
