#include "runtime/aggregate.h"

#include <sstream>

#include "common/error.h"

namespace rpqd {

using pgql::AggKind;

void AggState::consider_best(AggKind kind, const EvalValue& v,
                             const Catalog& catalog) {
  if (!has_best) {
    has_best = true;
    best_is_text = v.text != nullptr;
    if (best_is_text) {
      best_text = *v.text;
    } else {
      best_value = v.v;
    }
    return;
  }
  const std::string own_text = best_text;  // stable storage for the view
  const EvalValue current =
      best_is_text ? EvalValue::of_text(own_text) : EvalValue::of(best_value);
  const auto cmp = compare_values(v, current, catalog);
  if (!cmp) return;  // incomparable: keep the incumbent
  const bool take = kind == AggKind::kMin ? *cmp < 0 : *cmp > 0;
  if (take) {
    best_is_text = v.text != nullptr;
    if (best_is_text) {
      best_text = *v.text;
    } else {
      best_value = v.v;
    }
  }
}

void AggState::update(AggKind kind, const EvalValue& v,
                      const Catalog& catalog) {
  switch (kind) {
    case AggKind::kCount:
      ++count;
      return;
    case AggKind::kSum:
    case AggKind::kAvg:
      if (v.is_null() || !is_numeric(v.v)) return;
      ++count;
      if (v.v.type == ValueType::kDouble) {
        saw_double = true;
        sum_double += as_double(v.v);
      } else {
        sum_int += as_int(v.v);
      }
      return;
    case AggKind::kMin:
    case AggKind::kMax:
      if (v.is_null()) return;
      consider_best(kind, v, catalog);
      return;
    case AggKind::kNone:
      throw EngineError("aggregate update on a non-aggregate item");
  }
}

void AggState::merge(AggKind kind, const AggState& other,
                     const Catalog& catalog) {
  count += other.count;
  saw_double |= other.saw_double;
  sum_int += other.sum_int;
  sum_double += other.sum_double;
  if ((kind == AggKind::kMin || kind == AggKind::kMax) && other.has_best) {
    const EvalValue v = other.best_is_text
                            ? EvalValue::of_text(other.best_text)
                            : EvalValue::of(other.best_value);
    consider_best(kind, v, catalog);
  }
}

std::string AggState::render(AggKind kind, const Catalog& catalog) const {
  std::ostringstream out;
  switch (kind) {
    case AggKind::kCount:
      out << count;
      break;
    case AggKind::kSum:
      if (saw_double) {
        out << (sum_double + static_cast<double>(sum_int));
      } else {
        out << sum_int;
      }
      break;
    case AggKind::kAvg:
      if (count == 0) {
        out << "null";
      } else {
        out << (sum_double + static_cast<double>(sum_int)) /
                   static_cast<double>(count);
      }
      break;
    case AggKind::kMin:
    case AggKind::kMax:
      if (!has_best) {
        out << "null";
      } else if (best_is_text) {
        out << best_text;
      } else {
        out << catalog.render(best_value);
      }
      break;
    case AggKind::kNone:
      throw EngineError("aggregate render on a non-aggregate item");
  }
  return out.str();
}

void merge_agg_maps(AggMap& into, const AggMap& from,
                    const std::vector<pgql::AggKind>& kinds,
                    const Catalog& catalog) {
  for (const auto& [key, row] : from) {
    const auto it = into.find(key);
    if (it == into.end()) {
      into.emplace(key, row);
      continue;
    }
    AggRow& target = it->second;
    engine_check(target.states.size() == row.states.size(),
                 "aggregate merge arity mismatch");
    for (std::size_t i = 0; i < row.states.size(); ++i) {
      target.states[i].merge(kinds[i], row.states[i], catalog);
    }
  }
}

}  // namespace rpqd
