// Per-query runtime statistics: everything the paper's evaluation section
// reports — per-depth RPQ control-stage matches (Table 2), eliminations
// and duplications (Table 3), reachability-index size (§4.4), flow-control
// block counts (§4.2), message/byte counters, and peak buffered bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace rpqd {

/// Statistics of one RPQ control stage (index_id-indexed).
struct RpqStageStats {
  std::vector<std::uint64_t> matches_per_depth;
  std::vector<std::uint64_t> eliminated_per_depth;
  std::vector<std::uint64_t> duplicated_per_depth;
  std::uint64_t index_entries = 0;
  std::uint64_t index_bytes = 0;
  std::uint64_t index_hot_allocs = 0;  // heap allocations on the hot path
  std::uint64_t index_duplicate_entries = 0;  // post-run audit; must be 0
  // Cross-query reachability cache (DESIGN.md §11); 0 with the cache off.
  std::uint64_t index_seeded = 0;     // sentinel entries planted pre-run
  std::uint64_t index_seed_hits = 0;  // first visits that landed on a seed
  Depth max_depth_observed = 0;
  /// The §3.4 consensus value for unbounded RPQs (set when reached).
  std::optional<Depth> consensus_max_depth;

  std::uint64_t total_matches() const {
    std::uint64_t sum = 0;
    for (const auto v : matches_per_depth) sum += v;
    return sum;
  }
  std::uint64_t total_eliminated() const {
    std::uint64_t sum = 0;
    for (const auto v : eliminated_per_depth) sum += v;
    return sum;
  }
  std::uint64_t total_duplicated() const {
    std::uint64_t sum = 0;
    for (const auto v : duplicated_per_depth) sum += v;
    return sum;
  }

  void merge(const RpqStageStats& other);
};

/// EXPLAIN ANALYZE row: per-stage execution counts.
struct StageBreakdown {
  std::string note;              // the planner's stage annotation
  std::uint64_t visits = 0;      // frames entered (local + remote work)
  std::uint64_t remote_in = 0;   // contexts received via messages
  std::uint64_t remote_out = 0;  // contexts sent via messages
};

struct RuntimeStats {
  // Messaging.
  std::uint64_t data_messages = 0;
  std::uint64_t done_messages = 0;
  std::uint64_t term_messages = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t contexts_sent = 0;
  /// Max over machines of each machine's buffered-byte high-water mark —
  /// a per-machine memory metric. NOT the peak of the cluster-wide sum
  /// (machines peaking at different times must not be added together).
  std::uint64_t peak_queued_bytes = 0;
  // Flow control (§3.3 / §4.2).
  std::uint64_t flow_fast_path = 0;  // credits granted without a lock
  std::uint64_t flow_blocked = 0;
  std::uint64_t flow_shared_used = 0;
  std::uint64_t flow_overflow_used = 0;
  std::uint64_t flow_emergency = 0;  // should stay 0; safety valve
  /// Credits still outstanding after the run drained — a leak detector;
  /// always 0 on a healthy run (asserted by the differential harness).
  std::uint64_t flow_outstanding = 0;
  /// Overflow credits still marked in-flight after the run (subset of
  /// flow_outstanding with its own bookkeeping path; audited separately
  /// because a stale overflow_out entry blocks that depth forever on the
  /// next acquire even when the credit counters balance).
  std::uint64_t flow_overflow_outstanding = 0;
  // Fault injection (common/fault.h); all 0 without an active plan.
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_dup_dropped = 0;
  std::uint64_t faults_stalls = 0;
  // Reliable delivery over a lossy fabric (DESIGN.md §13); all 0 unless
  // the reliability layer is armed (lossy plan or reliable_transport).
  std::uint64_t faults_lost = 0;       // transmission attempts dropped
  std::uint64_t faults_corrupted = 0;  // transmission attempts corrupted
  std::uint64_t retransmits = 0;       // copies re-sent by the timers
  std::uint64_t acks_sent = 0;         // standalone kAck messages
  std::uint64_t payload_corruptions_detected = 0;  // CRC32 catches
  std::uint64_t dedup_drops = 0;       // link-seq duplicate deliveries dropped
  // aDFS work sharing (when enabled).
  std::uint64_t adfs_shared_tasks = 0;
  // Skew-aware balancing (DESIGN.md §14); all 0 with the knobs off.
  std::uint64_t mirror_fanouts = 0;   // hot frames delegated to peers
  std::uint64_t mirror_expands = 0;   // delegations expanded locally
  std::uint64_t contexts_redirected = 0;  // flushes advanced by load order
  /// Frames entered per machine (all stages) — the load distribution the
  /// §14 balancing acts on. Empty only for cached/coalesced results.
  std::vector<std::uint64_t> machine_contexts;
  /// max(machine_contexts) / mean(machine_contexts); 1.0 = perfectly
  /// balanced, num_machines = everything on one machine. 0 when no
  /// frames ran.
  double load_imbalance = 0.0;
  // Query lifecycle (common/abort.h); all 0 on a normally-finishing run.
  std::uint64_t abort_messages = 0;      // kAbort deliveries
  std::uint64_t blackholed_messages = 0;  // data sent to a crashed machine
  std::uint64_t epoch_dropped = 0;        // stale-epoch messages rejected
  std::uint64_t contexts_discarded = 0;   // dropped by the abort drain
  /// Max over machines of simultaneously-live execution frames (the
  /// max_live_contexts budget's tracked quantity; tracked always).
  std::uint64_t peak_live_contexts = 0;
  /// run_with_retry attempts before this result (0 = first try).
  unsigned retries = 0;
  // Cross-query caches (DESIGN.md §11); all 0/false with the caches off.
  std::uint64_t reach_cache_seeded = 0;     // sum of rpq[].index_seeded
  std::uint64_t reach_cache_seed_hits = 0;  // sum of rpq[].index_seed_hits
  std::uint64_t reach_cache_harvested = 0;  // facts persisted post-run
  /// This result was served from the result cache without executing.
  bool result_cache_hit = false;
  /// This result was coalesced onto a concurrent identical execution.
  bool result_cache_coalesced = false;
  /// This query probed the result cache while the cache's coherent epoch
  /// lagged its pinned snapshot (an update was mid-publication): it
  /// executed uncached rather than risk admitting a stale entry.
  bool result_cache_bypassed = false;
  // Online updates (DESIGN.md §12).
  /// Graph epoch this query pinned at admission; every traversal step
  /// observed exactly this snapshot.
  std::uint64_t snapshot_epoch = 0;
  // Concurrent serving (runtime/scheduler.h); identity values when the
  // query ran through the blocking single-query path.
  /// Credit-partition share this query's flow control was built with
  /// (1.0 = the whole per-machine buffer allowance).
  double credit_partition_share = 1.0;
  /// Wall-clock the query spent in the scheduler's admission queue
  /// before dispatch (0 when it was dispatched immediately or ran
  /// through the blocking path). Not part of elapsed_ms.
  double queue_ms = 0.0;
  // RPQ stages.
  std::vector<RpqStageStats> rpq;
  // Per-stage breakdown (EXPLAIN ANALYZE).
  std::vector<StageBreakdown> stages;
  // Output.
  std::uint64_t output_rows = 0;
  double elapsed_ms = 0.0;

  std::string summary() const;
  /// Renders the per-stage breakdown as an EXPLAIN ANALYZE style table.
  std::string stage_table() const;
};

}  // namespace rpqd
