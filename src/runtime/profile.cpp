#include "runtime/profile.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>

namespace rpqd {

namespace {

std::atomic<std::uint64_t> g_profile_allocations{0};

using u64 = std::uint64_t;
using ull = unsigned long long;

u64 sum_stages(const QueryProfile& p, u64 ProfileDepthRow::*field) {
  u64 sum = 0;
  for (const auto& stage : p.stages) sum += stage.total.*field;
  return sum;
}

void append_row_counts(std::ostringstream& out, const ProfileDepthRow& r) {
  out << "contexts=" << r.contexts;
  if (r.ctx_sent > 0) {
    out << " ctx_sent=" << r.ctx_sent << " msgs_sent=" << r.msgs_sent
        << " bytes_sent=" << r.bytes_sent;
  }
  if (r.ctx_received > 0) {
    out << " ctx_recv=" << r.ctx_received << " msgs_recv=" << r.msgs_received;
  }
  if (r.index_probes > 0) {
    out << " probes=" << r.index_probes << " new=" << r.index_new
        << " elim=" << r.index_eliminated << " dup=" << r.index_duplicated;
    if (r.index_seed_hits > 0) out << " seed_hits=" << r.index_seed_hits;
  }
}

void append_json_row(std::string& out, const ProfileDepthRow& r) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "\"contexts\": %llu, \"ctx_sent\": %llu, \"ctx_received\": %llu, "
      "\"msgs_sent\": %llu, \"msgs_received\": %llu, \"bytes_sent\": %llu, "
      "\"index_probes\": %llu, \"index_new\": %llu, "
      "\"index_eliminated\": %llu, \"index_duplicated\": %llu, "
      "\"index_seed_hits\": %llu",
      static_cast<ull>(r.contexts), static_cast<ull>(r.ctx_sent),
      static_cast<ull>(r.ctx_received), static_cast<ull>(r.msgs_sent),
      static_cast<ull>(r.msgs_received), static_cast<ull>(r.bytes_sent),
      static_cast<ull>(r.index_probes), static_cast<ull>(r.index_new),
      static_cast<ull>(r.index_eliminated),
      static_cast<ull>(r.index_duplicated), static_cast<ull>(r.index_seed_hits));
  out += buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

void ProfileDepthRow::add(const ProfileDepthRow& other) {
  contexts += other.contexts;
  ctx_sent += other.ctx_sent;
  ctx_received += other.ctx_received;
  msgs_sent += other.msgs_sent;
  msgs_received += other.msgs_received;
  bytes_sent += other.bytes_sent;
  index_probes += other.index_probes;
  index_new += other.index_new;
  index_eliminated += other.index_eliminated;
  index_duplicated += other.index_duplicated;
  index_seed_hits += other.index_seed_hits;
}

void QueryProfile::finish() {
  for (auto& stage : stages) {
    stage.total = ProfileDepthRow{};
    for (auto& machine : stage.machines) {
      machine.total = ProfileDepthRow{};
      for (const auto& row : machine.depths) machine.total.add(row);
      stage.total.add(machine.total);
    }
  }
}

std::uint64_t QueryProfile::total_contexts() const {
  return sum_stages(*this, &ProfileDepthRow::contexts);
}
std::uint64_t QueryProfile::total_ctx_sent() const {
  return sum_stages(*this, &ProfileDepthRow::ctx_sent);
}
std::uint64_t QueryProfile::total_ctx_received() const {
  return sum_stages(*this, &ProfileDepthRow::ctx_received);
}
std::uint64_t QueryProfile::total_msgs_sent() const {
  return sum_stages(*this, &ProfileDepthRow::msgs_sent);
}
std::uint64_t QueryProfile::total_msgs_received() const {
  return sum_stages(*this, &ProfileDepthRow::msgs_received);
}
std::uint64_t QueryProfile::total_bytes_sent() const {
  return sum_stages(*this, &ProfileDepthRow::bytes_sent);
}
std::uint64_t QueryProfile::total_index_probes() const {
  return sum_stages(*this, &ProfileDepthRow::index_probes);
}
std::uint64_t QueryProfile::total_index_seed_hits() const {
  return sum_stages(*this, &ProfileDepthRow::index_seed_hits);
}
std::uint64_t QueryProfile::stage_contexts(StageId stage) const {
  return stages[stage].total.contexts;
}
std::uint64_t QueryProfile::stage_ctx_sent(StageId stage) const {
  return stages[stage].total.ctx_sent;
}
std::uint64_t QueryProfile::total_term_rounds() const {
  std::uint64_t sum = 0;
  for (const auto& m : machines) sum += m.term_rounds;
  return sum;
}

std::string QueryProfile::text() const {
  std::ostringstream out;
  if (!enabled) return "PROFILE: disabled\n";
  out << "PROFILE  stages=" << stages.size() << " machines=" << machines.size()
      << "  contexts=" << total_contexts() << " ctx_sent=" << total_ctx_sent()
      << " msgs_sent=" << total_msgs_sent()
      << " bytes_sent=" << total_bytes_sent() << '\n';
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& stage = stages[s];
    if (!stage.total.any()) continue;
    out << "S" << s << " [" << stage.note << "] ";
    append_row_counts(out, stage.total);
    out << '\n';
    for (std::size_t m = 0; m < stage.machines.size(); ++m) {
      const auto& node = stage.machines[m];
      if (!node.total.any()) continue;
      out << "  m" << m << ": ";
      append_row_counts(out, node.total);
      // Per-depth contexts, the Table 2/3-style depth profile of this
      // (stage, machine) cell.
      out << " |";
      for (std::size_t d = 0; d < node.depths.size(); ++d) {
        if (!node.depths[d].any()) continue;
        out << " d" << d << ':' << node.depths[d].contexts;
      }
      out << '\n';
    }
  }
  for (std::size_t m = 0; m < machines.size(); ++m) {
    const auto& sum = machines[m];
    char buf[320];
    std::snprintf(
        buf, sizeof buf,
        "credits m%zu: fast=%llu shared=%llu overflow=%llu emergency=%llu "
        "blocked=%llu stalls=%llu stall_ms=%.3f term_rounds=%llu "
        "peak_live=%llu discarded=%llu",
        m, static_cast<ull>(sum.credit_fast_path),
        static_cast<ull>(sum.credit_shared),
        static_cast<ull>(sum.credit_overflow),
        static_cast<ull>(sum.credit_emergency),
        static_cast<ull>(sum.credit_blocked),
        static_cast<ull>(sum.stall_events), sum.stall_ms_total(),
        static_cast<ull>(sum.term_rounds),
        static_cast<ull>(sum.peak_live_contexts),
        static_cast<ull>(sum.discarded_contexts));
    out << buf;
    if (sum.adfs_shared_tasks > 0) {
      out << " adfs=" << sum.adfs_shared_tasks;
    }
    if (sum.mirror_fanouts + sum.mirror_expands > 0) {
      out << " mirror_fanouts=" << sum.mirror_fanouts
          << " mirror_expands=" << sum.mirror_expands;
    }
    if (sum.stall_events > 0) {
      // Stall breakdown by the credit class that resolved the stall.
      static const char* kClassNames[kNumCreditClasses] = {
          "fixed", "dedicated", "shared", "overflow", "emergency"};
      out << " (";
      bool first = true;
      for (unsigned c = 0; c < kNumCreditClasses; ++c) {
        if (sum.stall_ms_by_class[c] <= 0.0) continue;
        if (!first) out << ' ';
        first = false;
        char cbuf[48];
        std::snprintf(cbuf, sizeof cbuf, "%s=%.3fms", kClassNames[c],
                      sum.stall_ms_by_class[c]);
        out << cbuf;
      }
      out << ')';
    }
    out << '\n';
  }
  // Cluster-level §14 skew summary: how evenly the frame work (and the
  // induced credit stalling) landed across machines. max/mean == 1.0 is a
  // perfectly balanced run; == machines.size() is everything on one box.
  if (!machines.empty()) {
    u64 max_ctx = 0, total_ctx = 0;
    double max_stall = 0.0, total_stall = 0.0;
    for (const auto& sum : machines) {
      max_ctx = std::max(max_ctx, sum.total_contexts);
      total_ctx += sum.total_contexts;
      max_stall = std::max(max_stall, sum.stall_ms_total());
      total_stall += sum.stall_ms_total();
    }
    if (total_ctx > 0) {
      const double mean_ctx =
          static_cast<double>(total_ctx) / static_cast<double>(machines.size());
      const double mean_stall = total_stall / static_cast<double>(machines.size());
      char bbuf[200];
      std::snprintf(bbuf, sizeof bbuf,
                    "balance: contexts max=%llu mean=%.1f imbalance=%.3f "
                    "stall_ms max=%.3f mean=%.3f",
                    static_cast<ull>(max_ctx), mean_ctx,
                    static_cast<double>(max_ctx) / mean_ctx, max_stall,
                    mean_stall);
      out << bbuf << '\n';
    }
  }
  if (transport.any()) {
    char tbuf[256];
    std::snprintf(tbuf, sizeof tbuf,
                  "transport: lost=%llu corrupted=%llu retransmits=%llu "
                  "acks=%llu crc_detected=%llu dedup_drops=%llu",
                  static_cast<ull>(transport.faults_lost),
                  static_cast<ull>(transport.faults_corrupted),
                  static_cast<ull>(transport.retransmits),
                  static_cast<ull>(transport.acks_sent),
                  static_cast<ull>(transport.payload_corruptions_detected),
                  static_cast<ull>(transport.dedup_drops));
    out << tbuf << '\n';
  }
  return out.str();
}

std::string QueryProfile::to_json() const {
  std::string out = "{";
  out += "\"enabled\": ";
  out += enabled ? "true" : "false";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                ", \"machines\": %zu, \"term_rounds\": %llu, \"totals\": {",
                machines.size(), static_cast<ull>(total_term_rounds()));
  out += buf;
  append_json_row(out, [this] {
    ProfileDepthRow total;
    for (const auto& stage : stages) total.add(stage.total);
    return total;
  }());
  out += "}, \"stages\": [";
  bool first_stage = true;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& stage = stages[s];
    if (!first_stage) out += ", ";
    first_stage = false;
    std::snprintf(buf, sizeof buf, "{\"id\": %zu, \"note\": \"", s);
    out += buf;
    out += json_escape(stage.note);
    out += "\", ";
    append_json_row(out, stage.total);
    out += ", \"machines\": [";
    bool first_machine = true;
    for (std::size_t m = 0; m < stage.machines.size(); ++m) {
      const auto& node = stage.machines[m];
      if (!node.total.any()) continue;
      if (!first_machine) out += ", ";
      first_machine = false;
      std::snprintf(buf, sizeof buf, "{\"m\": %zu, ", m);
      out += buf;
      append_json_row(out, node.total);
      out += ", \"depths\": [";
      bool first_depth = true;
      for (std::size_t d = 0; d < node.depths.size(); ++d) {
        if (!node.depths[d].any()) continue;
        if (!first_depth) out += ", ";
        first_depth = false;
        std::snprintf(buf, sizeof buf, "{\"d\": %zu, ", d);
        out += buf;
        append_json_row(out, node.depths[d]);
        out += "}";
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "], \"credits\": [";
  for (std::size_t m = 0; m < machines.size(); ++m) {
    const auto& sum = machines[m];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"m\": %zu, \"fast_path\": %llu, \"shared\": %llu, "
        "\"overflow\": %llu, \"emergency\": %llu, \"blocked\": %llu, "
        "\"stall_events\": %llu, \"stall_ms\": %.3f, \"term_rounds\": %llu, "
        "\"peak_live\": %llu, \"discarded\": %llu, \"adfs_shared\": %llu, "
        "\"mirror_fanouts\": %llu, \"mirror_expands\": %llu, "
        "\"contexts\": %llu}",
        m == 0 ? "" : ", ", m, static_cast<ull>(sum.credit_fast_path),
        static_cast<ull>(sum.credit_shared),
        static_cast<ull>(sum.credit_overflow),
        static_cast<ull>(sum.credit_emergency),
        static_cast<ull>(sum.credit_blocked),
        static_cast<ull>(sum.stall_events), sum.stall_ms_total(),
        static_cast<ull>(sum.term_rounds),
        static_cast<ull>(sum.peak_live_contexts),
        static_cast<ull>(sum.discarded_contexts),
        static_cast<ull>(sum.adfs_shared_tasks),
        static_cast<ull>(sum.mirror_fanouts),
        static_cast<ull>(sum.mirror_expands),
        static_cast<ull>(sum.total_contexts));
    out += buf;
  }
  out += "], \"transport\": {";
  std::snprintf(buf, sizeof buf,
                "\"lost\": %llu, \"corrupted\": %llu, \"retransmits\": %llu, "
                "\"acks\": %llu, \"crc_detected\": %llu, \"dedup_drops\": %llu",
                static_cast<ull>(transport.faults_lost),
                static_cast<ull>(transport.faults_corrupted),
                static_cast<ull>(transport.retransmits),
                static_cast<ull>(transport.acks_sent),
                static_cast<ull>(transport.payload_corruptions_detected),
                static_cast<ull>(transport.dedup_drops));
  out += buf;
  out += "}}";
  return out;
}

std::uint64_t profile_allocations() {
  return g_profile_allocations.load(std::memory_order_relaxed);
}

WorkerProfile::WorkerProfile(unsigned num_stages, Depth prealloc_depths) {
  grid_.resize(num_stages);
  for (auto& rows : grid_) rows.resize(prealloc_depths);
  // One logical allocation event per constructed slot (the grid plus its
  // preallocated rows are reserved here, before the query's hot path).
  g_profile_allocations.fetch_add(1 + num_stages, std::memory_order_relaxed);
}

void WorkerProfile::grow(std::vector<ProfileDepthRow>& rows, Depth depth) {
  // Geometric growth so deep RPQs amortize to O(log depth) allocations;
  // counted so tests can observe the (rare) hot-path fallback.
  std::size_t capacity = std::max<std::size_t>(rows.size() * 2, 16);
  while (capacity <= depth) capacity *= 2;
  rows.resize(capacity);
  g_profile_allocations.fetch_add(1, std::memory_order_relaxed);
}

void WorkerProfile::merge_into(MachineId machine, QueryProfile& out) const {
  for (std::size_t s = 0; s < grid_.size(); ++s) {
    const auto& rows = grid_[s];
    ProfileMachineNode& node = out.stages[s].machines[machine];
    for (std::size_t d = 0; d < rows.size(); ++d) {
      if (!rows[d].any()) continue;
      if (node.depths.size() <= d) node.depths.resize(d + 1);
      node.depths[d].add(rows[d]);
    }
  }
  ProfileMachineSummary& sum = out.machines[machine];
  for (unsigned c = 0; c < kNumCreditClasses; ++c) {
    sum.stall_ms_by_class[c] += stall_ms_by_class_[c];
  }
  sum.stall_events += stall_events_;
}

}  // namespace rpqd
