// Per-query tracing/profiling layer (the observability pillar).
//
// A QueryProfile is a span-style tree of per-(stage, machine, depth)
// accounting collected while a query runs: contexts processed, contexts
// and messages sent/received, bytes, reachability-index probe outcomes,
// flow-control credit-stall time broken down by the credit class that
// resolved the stall, and termination-protocol broadcast rounds.
//
// Collection discipline (mirrors the PR 1 arena rules):
//   - per-worker WorkerProfile slots are preallocated at query start;
//     the hot path indexes a flat [stage][depth] grid with no locks and
//     no allocation up to the preallocated depth window (growth beyond
//     it is geometric, out-of-line, and counted in profile_allocations()
//     so tests can assert the allocation-free property);
//   - disabled profiling compiles down to one predictable branch per
//     hook (`worker.prof == nullptr`) and constructs nothing — the
//     tier-1 contract asserted by profile_test.cpp and measured by
//     bench_trace_overhead;
//   - worker slots are merged into the QueryProfile tree once, after
//     the worker threads join.
//
// Exposure: `EngineConfig.profile = true`, a `PROFILE `-prefixed PGQL
// query (per-query opt-in), QueryProfile::text() for a human-readable
// EXPLAIN PROFILE report, and QueryProfile::to_json() for tooling
// (bench/run_bench_suite emits it into BENCH_RPQD.json).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/message.h"

namespace rpqd {

/// Number of CreditClass values (message.h); stall time is attributed to
/// the class that eventually resolved the stall.
inline constexpr unsigned kNumCreditClasses = 5;

/// Leaf of the profile tree: one (stage, machine, depth) cell.
struct ProfileDepthRow {
  std::uint64_t contexts = 0;       // frames entered at this depth
  std::uint64_t ctx_sent = 0;       // contexts serialized to remote machines
  std::uint64_t ctx_received = 0;   // contexts decoded from data messages
  std::uint64_t msgs_sent = 0;      // data messages flushed
  std::uint64_t msgs_received = 0;  // data messages processed
  std::uint64_t bytes_sent = 0;     // payload bytes flushed
  // Reachability-index probe outcomes (RPQ control stages only).
  std::uint64_t index_probes = 0;
  std::uint64_t index_new = 0;         // first visit: emitted
  std::uint64_t index_eliminated = 0;  // dedup kill: subtree pruned
  std::uint64_t index_duplicated = 0;  // depth improved: no re-emission
  /// Subset of index_new whose first visit landed on a cross-query cache
  /// seed (DESIGN.md §11); 0 with the cache off.
  std::uint64_t index_seed_hits = 0;

  bool any() const {
    return (contexts | ctx_sent | ctx_received | msgs_sent | msgs_received |
            bytes_sent | index_probes) != 0;
  }
  void add(const ProfileDepthRow& other);
};

/// Per-(stage, machine) node: depth-indexed leaf rows plus their sum.
struct ProfileMachineNode {
  std::vector<ProfileDepthRow> depths;
  ProfileDepthRow total;  // filled by QueryProfile::finish()
};

/// Per-stage node of the tree.
struct ProfileStageNode {
  std::string note;                          // planner's stage annotation
  std::vector<ProfileMachineNode> machines;  // [machine]
  ProfileDepthRow total;                     // filled by finish()
};

/// Per-machine summary that is not stage-resolved: credit accounting and
/// termination-protocol rounds.
struct ProfileMachineSummary {
  std::uint64_t credit_fast_path = 0;  // lock-free grants (dedicated+shared)
  std::uint64_t credit_shared = 0;
  std::uint64_t credit_overflow = 0;
  std::uint64_t credit_emergency = 0;
  std::uint64_t credit_blocked = 0;  // failed try_acquire calls
  /// Wall time spent stalled in the blocking credit acquire, attributed
  /// to the CreditClass that eventually resolved the stall.
  std::array<double, kNumCreditClasses> stall_ms_by_class{};
  std::uint64_t stall_events = 0;  // acquires that did not succeed first try
  std::uint64_t term_rounds = 0;   // termination statuses broadcast
  // Query lifecycle (common/abort.h): this machine's live-frame peak (the
  // max_live_contexts budget's tracked quantity) and abort-path drops.
  std::uint64_t peak_live_contexts = 0;
  std::uint64_t discarded_contexts = 0;
  /// Traversals offloaded to idle peer workers via aDFS work sharing
  /// (machine.h shared_task_count); 0 with adfs_work_sharing off.
  std::uint64_t adfs_shared_tasks = 0;
  // Skew-aware balancing (DESIGN.md §14); 0 with the knobs off.
  std::uint64_t mirror_fanouts = 0;  // hot frames delegated (send side)
  std::uint64_t mirror_expands = 0;  // delegations expanded (recv side)
  /// Frames entered across all stages on this machine — the per-machine
  /// load quantity the §14 imbalance line reports over.
  std::uint64_t total_contexts = 0;

  double stall_ms_total() const {
    double sum = 0.0;
    for (const double ms : stall_ms_by_class) sum += ms;
    return sum;
  }
};

/// Query-global reliable-transport counters (DESIGN.md §13), copied from
/// NetStats by the engine when profiling is on. Transport work is not
/// stage-resolved: retransmission timers and acks run below the level
/// where stages exist.
struct ProfileTransportSummary {
  std::uint64_t faults_lost = 0;
  std::uint64_t faults_corrupted = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t payload_corruptions_detected = 0;
  std::uint64_t dedup_drops = 0;

  bool any() const {
    return (faults_lost | faults_corrupted | retransmits | acks_sent |
            payload_corruptions_detected | dedup_drops) != 0;
  }
};

/// The per-query profile tree returned alongside results.
struct QueryProfile {
  bool enabled = false;
  std::vector<ProfileStageNode> stages;        // [stage][machine][depth]
  std::vector<ProfileMachineSummary> machines; // [machine]
  ProfileTransportSummary transport;           // query-global (§13)

  /// Recomputes every node's `total` bottom-up; the engine calls this
  /// once after merging all worker slots.
  void finish();

  // Reconciliation accessors — each is the exact sum of the tree's
  // leaves, asserted against the top-level QueryStats by the
  // differential harness (sum of per-stage contexts == contexts_sent
  // and friends).
  std::uint64_t total_contexts() const;
  std::uint64_t total_ctx_sent() const;
  std::uint64_t total_ctx_received() const;
  std::uint64_t total_msgs_sent() const;
  std::uint64_t total_msgs_received() const;
  std::uint64_t total_bytes_sent() const;
  std::uint64_t total_index_probes() const;
  std::uint64_t total_index_seed_hits() const;
  std::uint64_t stage_contexts(StageId stage) const;
  std::uint64_t stage_ctx_sent(StageId stage) const;
  std::uint64_t total_term_rounds() const;

  /// Human-readable EXPLAIN PROFILE-style report.
  std::string text() const;
  /// Machine-readable export (consumed by bench/run_bench_suite).
  std::string to_json() const;
};

/// Process-wide monotonic count of heap allocations performed by the
/// profile-collection layer (WorkerProfile construction and grid
/// growth). With profiling disabled this counter must not move — the
/// tier-1 contract test asserts it, reusing the PR 1
/// allocation-assert idiom (reach_index hot_allocations).
std::uint64_t profile_allocations();

/// Per-worker collection slot: a flat [stage][depth] grid preallocated
/// at query start. Exclusively owned by one worker thread; no locks.
class WorkerProfile {
 public:
  WorkerProfile(unsigned num_stages, Depth prealloc_depths);

  /// Hot-path accessor: allocation-free while depth stays inside the
  /// preallocated window; geometric out-of-line growth past it.
  ProfileDepthRow& row(StageId stage, Depth depth) {
    std::vector<ProfileDepthRow>& rows = grid_[stage];
    if (depth >= rows.size()) grow(rows, depth);
    return rows[depth];
  }

  void note_stall(CreditClass resolved, double ms) {
    stall_ms_by_class_[static_cast<unsigned>(resolved)] += ms;
    ++stall_events_;
  }

  /// Adds this worker's rows and stall accounting into the query tree
  /// under `machine`. Called once, post-join.
  void merge_into(MachineId machine, QueryProfile& out) const;

 private:
  void grow(std::vector<ProfileDepthRow>& rows, Depth depth);

  std::vector<std::vector<ProfileDepthRow>> grid_;  // [stage][depth]
  std::array<double, kNumCreditClasses> stall_ms_by_class_{};
  std::uint64_t stall_events_ = 0;
};

}  // namespace rpqd
