#include "runtime/result_cache.h"

namespace rpqd {

std::uint64_t estimate_result_bytes(const QueryResult& result) {
  // Fixed overhead covers stats/profile/explain plus container headers;
  // the dominant variable cost is the rendered row text.
  std::uint64_t bytes = 1024;
  for (const auto& c : result.columns) bytes += 32 + c.size();
  for (const auto& row : result.rows) {
    bytes += 32;
    for (const auto& cell : row) bytes += 32 + cell.size();
  }
  bytes += result.explain.size();
  return bytes;
}

ResultCache::ResultCache(std::uint64_t max_bytes,
                         std::uint64_t admit_max_bytes,
                         std::uint64_t coherent_epoch)
    : max_bytes_(max_bytes),
      admit_max_bytes_(admit_max_bytes),
      coherent_epoch_(coherent_epoch) {
  stats_.coherent_epoch = coherent_epoch_;
}

std::uint64_t ResultCache::admit_ceiling_locked() const {
  if (admit_max_bytes_ != 0) return admit_max_bytes_;
  return max_bytes_ / 8;
}

ResultCache::Lookup ResultCache::acquire(const std::string& text,
                                         bool profile, std::uint64_t epoch) {
  const Key key{text, profile};
  std::lock_guard<std::mutex> lock(mutex_);
  // Coherence invariant (DESIGN.md §12): the update path notifies this
  // cache BEFORE publishing the new snapshot, so no query can pin an
  // epoch the cache has not heard of. A probe from the future means a
  // graph mutation skipped invalidation — fail loudly, the alternative
  // is silently serving results of a graph that no longer exists.
  engine_check(epoch <= coherent_epoch_,
               "result-cache probe pinned an epoch newer than the cache's "
               "coherent epoch: graph mutated without cache invalidation");
  if (epoch < coherent_epoch_) {
    // The probe's snapshot predates the last update: a stored entry or a
    // live flight describes a newer graph. Execute uncached.
    ++stats_.bypassed_stale;
    Lookup out;
    out.role = Role::kBypass;
    return out;
  }
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    Lookup out;
    out.role = Role::kHit;
    out.result = it->second->result;
    return out;
  }
  if (const auto it = flights_.find(key); it != flights_.end()) {
    if (it->second->epoch == epoch) {
      ++stats_.coalesced;
      Lookup out;
      out.role = Role::kFollower;
      out.flight = it->second;
      return out;
    }
    // The live flight pinned an older snapshot (an update landed while
    // it executed). Its result is wrong for THIS asker: replace the
    // registration — the old leader still publishes to its own
    // followers, but its completion will fail the identity gate and
    // never reach the store.
    ++stats_.flights_restarted;
    flights_.erase(it);
  }
  ++stats_.misses;
  Lookup out;
  out.role = Role::kLeader;
  out.flight = std::make_shared<Flight>();
  out.flight->epoch = epoch;
  flights_.emplace(key, out.flight);
  return out;
}

void ResultCache::retire_flight_locked(const Key& key,
                                       const std::shared_ptr<Flight>& flight) {
  // Only erase the registration if it is still ours: a concurrent
  // invalidate() does not touch flights, but defensive identity checking
  // keeps a double-complete from evicting a successor flight.
  const auto it = flights_.find(key);
  if (it != flights_.end() && it->second == flight) flights_.erase(it);
}

void ResultCache::complete(const std::shared_ptr<Flight>& flight,
                           const std::string& text, bool profile,
                           const QueryResult& result,
                           const ResultCacheScope& scope) {
  const Key key{text, profile};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Admission gates, in order: the flight must still be the registered
    // one for its key (a stale flight replaced by a newer-epoch leader
    // lost its registration), its epoch must still be coherent (an
    // update may have landed while it executed — its result describes a
    // graph that no longer exists), and the result must be clean.
    const auto fit = flights_.find(key);
    const bool registered = fit != flights_.end() && fit->second == flight;
    if (registered) flights_.erase(fit);
    if (!registered || flight->epoch != coherent_epoch_) {
      ++stats_.stale_flight_drops;
    } else if (result.aborted || result.truncated) {
      ++stats_.rejected_dirty;
    } else {
      const std::uint64_t bytes = estimate_result_bytes(result);
      if (bytes > admit_ceiling_locked() || bytes > max_bytes_) {
        ++stats_.rejected_too_big;
      } else if (const auto it = index_.find(key); it != index_.end()) {
        // A racing leader of the same key already cached; refresh.
        bytes_ -= it->second->bytes;
        it->second->result = result;
        it->second->bytes = bytes;
        it->second->scope = scope;
        it->second->epoch = flight->epoch;
        bytes_ += bytes;
        lru_.splice(lru_.begin(), lru_, it->second);
        evict_to_budget_locked();
      } else {
        lru_.push_front(Node{key, result, bytes, scope, flight->epoch});
        index_.emplace(key, lru_.begin());
        bytes_ += bytes;
        ++stats_.inserts;
        evict_to_budget_locked();
      }
    }
  }
  {
    std::lock_guard<std::mutex> flock(flight->mutex);
    flight->result = result;
    flight->done = true;
  }
  flight->cv.notify_all();
}

void ResultCache::complete_error(const std::shared_ptr<Flight>& flight,
                                 const std::string& text, bool profile,
                                 std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retire_flight_locked(Key{text, profile}, flight);
  }
  {
    std::lock_guard<std::mutex> flock(flight->mutex);
    flight->error = std::move(error);
    flight->done = true;
  }
  flight->cv.notify_all();
}

QueryResult ResultCache::await(const std::shared_ptr<Flight>& flight) {
  std::unique_lock<std::mutex> lock(flight->mutex);
  flight->cv.wait(lock, [&] { return flight->done; });
  if (flight->error) std::rethrow_exception(flight->error);
  return flight->result;
}

void ResultCache::invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.evicted += lru_.size();
  ++stats_.invalidations;
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

void ResultCache::on_graph_update(std::uint64_t epoch,
                                  const DirtyScope& dirty) {
  std::lock_guard<std::mutex> lock(mutex_);
  engine_check(epoch > coherent_epoch_,
               "result-cache update notification out of order");
  coherent_epoch_ = epoch;
  stats_.coherent_epoch = epoch;
  ++stats_.updates_observed;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (scope_affected(it->scope, dirty)) {
      bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.evicted_by_update;
    } else {
      ++it;
    }
  }
}

void ResultCache::set_budget(std::uint64_t max_bytes,
                             std::uint64_t admit_max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_bytes_ = max_bytes;
  admit_max_bytes_ = admit_max_bytes;
  evict_to_budget_locked();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ResultCacheStats out = stats_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  out.coherent_epoch = coherent_epoch_;
  return out;
}

void ResultCache::evict_to_budget_locked() {
  while (!lru_.empty() && bytes_ > max_bytes_) {
    const Node& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evicted;
  }
}

}  // namespace rpqd
