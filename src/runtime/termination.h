// Incremental distributed termination detection (§3.4).
//
// Each machine tracks, per stage: contexts sent, contexts processed, and
// currently-active traversal frames; RPQ stage groups additionally track
// the same triple per depth. Idle machines broadcast status messages (a
// sequence number, the idle flag, and all counters). Termination is
// decided purely from received statuses — no shared state — using the
// classic two-wave stability argument: a stage is globally terminated
// when every machine reported the same stage counters in two consecutive
// statuses, the global sent/processed sums match, no frames are active at
// the stage, and all preceding stages have terminated.
//
// For unbounded RPQs, statuses carry each machine's maximum locally
// observed depth (implicitly: the length of its per-depth counter
// vector). Once every machine is stable and idle, the maximum over all
// reports is the consensus maximum depth (§3.4 "Unbounded RPQs").
//
// Loss tolerance: status broadcasts are kTermination messages, which the
// §13 reliable-delivery layer sequences, checksums, and retransmits until
// acked — a dropped or corrupted status is re-delivered in order, so the
// two-wave stability argument holds unmodified over a lossy fabric. The
// periodic forced re-broadcast (`maybe_broadcast(force=true)`) remains as
// the protocol-level second confirmation wave; it is not a substitute for
// transport retransmission (it sends the *current* counters, not the
// in-flight snapshot a peer's decision may be waiting on).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/network.h"

namespace rpqd {

/// One machine's broadcast status snapshot.
struct TermStatus {
  std::uint64_t seq = 0;
  bool idle = false;
  /// Per stage: {sent, processed, active frames}.
  std::vector<std::array<std::uint64_t, 3>> stages;
  /// Per RPQ group, per depth: {sent, processed, active frames}. The
  /// vector length doubles as the machine's max observed depth + 1.
  std::vector<std::vector<std::array<std::uint64_t, 3>>> groups;

  bool counters_equal(const TermStatus& other) const {
    return idle == other.idle && stages == other.stages &&
           groups == other.groups;
  }
};

class TerminationDetector {
 public:
  TerminationDetector(MachineId self, unsigned num_machines,
                      unsigned num_stages, unsigned num_groups);

  // ---- counter updates (called by workers; thread-safe) ----
  void note_sent(StageId stage, int group, Depth depth, std::uint64_t n);
  void note_processed(StageId stage, int group, Depth depth, std::uint64_t n);
  void frame_pushed(StageId stage, int group, Depth depth);
  void frame_popped(StageId stage, int group, Depth depth);
  void set_idle(bool idle) {
    idle_.store(idle, std::memory_order_seq_cst);
  }

  // ---- protocol driving (called by the machine's idle loop) ----
  /// Ingests a received termination status message.
  void on_status(const Message& msg);
  /// Broadcasts the current status when it changed, or unconditionally
  /// when `force` (periodic re-confirmation providing the second wave).
  void maybe_broadcast(Network& net, bool force);

  // ---- decisions (computed from received statuses only) ----
  bool globally_terminated() const;
  /// Number of leading stages known to be globally terminated.
  unsigned terminated_stage_prefix() const;
  /// True when depth `d` of RPQ group `g` has globally terminated.
  bool depth_terminated(unsigned group, Depth depth) const;
  /// §3.4 consensus on the maximum observed depth of group `g`; set once
  /// every machine is stable and idle.
  std::optional<Depth> consensus_max_depth(unsigned group) const;
  /// Compact one-line summary of the stored per-machine statuses
  /// (diagnostics; used by the RPQD_TERM_DEBUG idle-loop dump).
  std::string debug_string() const;

  Depth local_max_depth(unsigned group) const;

  /// Per-stage (sent, processed) remote-context totals of this machine —
  /// feeds the EXPLAIN ANALYZE stage breakdown.
  std::pair<std::uint64_t, std::uint64_t> stage_totals(StageId stage) const {
    return {stage_sent_[stage].load(std::memory_order_relaxed),
            stage_processed_[stage].load(std::memory_order_relaxed)};
  }

  /// Status broadcasts this machine actually sent (suppressed no-change
  /// rounds excluded) — the §3.4 protocol-chatter metric the profiler
  /// reports as term_rounds.
  std::uint64_t broadcast_rounds() const {
    return broadcast_rounds_.load(std::memory_order_relaxed);
  }

 private:
  TermStatus build_status() const;
  void store_status(MachineId machine, TermStatus status);
  bool machine_stable(MachineId m) const;  // two identical statuses

  MachineId self_;
  unsigned num_machines_;
  unsigned num_stages_;
  unsigned num_groups_;

  // Live counters.
  std::vector<std::atomic<std::uint64_t>> stage_sent_;
  std::vector<std::atomic<std::uint64_t>> stage_processed_;
  std::vector<std::atomic<std::int64_t>> stage_active_;
  mutable std::mutex group_mutex_;
  std::vector<std::vector<std::array<std::uint64_t, 3>>> group_counters_;
  std::atomic<bool> idle_{false};

  // Received statuses: last two per machine.
  mutable std::mutex status_mutex_;
  std::vector<std::optional<TermStatus>> last_;
  std::vector<std::optional<TermStatus>> prev_;
  TermStatus last_broadcast_;
  bool broadcast_valid_ = false;
  std::uint64_t seq_ = 0;
  std::atomic<std::uint64_t> broadcast_rounds_{0};
};

}  // namespace rpqd
