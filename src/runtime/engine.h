// The distributed query engine: compiles PGQL text and runs the execution
// plan across the simulated cluster, one MachineRuntime (plus worker
// threads) per machine.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/abort.h"
#include "common/config.h"
#include "graph/partition.h"
#include "plan/plan.h"
#include "runtime/profile.h"
#include "runtime/stats.h"

namespace rpqd {

class Network;

struct QueryResult {
  std::uint64_t count = 0;  // COUNT(*) value, or number of rows
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;  // rendered projections
  RuntimeStats stats;
  /// Per-(stage, machine, depth) tracing tree; `enabled` only when the
  /// query ran with `EngineConfig.profile` or a `PROFILE ` prefix.
  QueryProfile profile;
  std::string explain;
  /// Query lifecycle (common/abort.h): true when the run ended via the
  /// cooperative abort protocol instead of normal termination. Rows and
  /// count are then a partial prefix of the answer.
  bool aborted = false;
  AbortReason abort_reason = AbortReason::kNone;
  /// The run completed but the max_exploration_depth safety valve pruned
  /// exploration, so the result set may be incomplete. Reported through
  /// the same reason channel (kDepthTruncated) without aborting.
  bool truncated = false;
};

class DistributedEngine;

/// A parsed + planned query that can be executed repeatedly without
/// re-compilation. Valid as long as the owning engine lives.
class PreparedQuery {
 public:
  QueryResult run();
  const ExecPlan& plan() const { return *plan_; }
  const std::string& explain() const { return plan_->explain; }

 private:
  friend class DistributedEngine;
  DistributedEngine* engine_ = nullptr;
  std::shared_ptr<const ExecPlan> plan_;
};

class DistributedEngine {
 public:
  /// The machine count is taken from the partitioned graph; the config's
  /// num_machines field is ignored here.
  DistributedEngine(std::shared_ptr<const PartitionedGraph> graph,
                    EngineConfig config);

  /// Parses, plans, and executes a PGQL query. A case-insensitive
  /// `PROFILE ` prefix enables per-query profiling for this query only
  /// (the result's QueryProfile tree is populated).
  QueryResult execute(std::string_view pgql);

  /// Parses and plans once; the returned query executes repeatedly.
  PreparedQuery prepare(std::string_view pgql);

  /// Executes an already-compiled plan.
  QueryResult execute_plan(const ExecPlan& plan);

  /// Compiles a query and returns its EXPLAIN text without running it.
  std::string explain(std::string_view pgql) const;

  const EngineConfig& config() const { return config_; }
  EngineConfig& mutable_config() { return config_; }
  const PartitionedGraph& graph() const { return *graph_; }

  /// Requests a user cancel (AbortReason::kUserCancel) on every query
  /// currently executing on this engine; returns how many were live.
  /// Each aborts cooperatively and returns a clean QueryResult.
  unsigned cancel_all();

  /// Restarts the per-engine run counter that crash-stop fault plans
  /// match against (FaultPlan::crash_run). Called when a new fault
  /// schedule is installed so "crash on run N" counts from that point.
  void reset_fault_run_index() {
    fault_run_seq_.store(0, std::memory_order_relaxed);
  }

 private:
  QueryResult run_plan(const ExecPlan& plan, bool profile);

  std::shared_ptr<const PartitionedGraph> graph_;
  EngineConfig config_;
  // Live-run registry for cancel_all: each run_plan registers its abort
  // controller + network for the duration of the run (guarded so a
  // concurrent cancel never touches a dying Network).
  struct ActiveRun {
    AbortController* ctrl;
    Network* net;
  };
  std::mutex active_mutex_;
  std::vector<ActiveRun> active_runs_;
  std::atomic<std::uint64_t> fault_run_seq_{0};
  std::atomic<std::uint32_t> epoch_seq_{0};
};

}  // namespace rpqd
