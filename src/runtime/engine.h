// The distributed query engine: compiles PGQL text and runs the execution
// plan across the simulated cluster, one MachineRuntime (plus worker
// threads) per machine.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/abort.h"
#include "common/config.h"
#include "graph/snapshot.h"
#include "plan/plan.h"
#include "rpq/reach_cache.h"
#include "runtime/profile.h"
#include "runtime/stats.h"

namespace rpqd {

class Network;

struct QueryResult {
  std::uint64_t count = 0;  // COUNT(*) value, or number of rows
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;  // rendered projections
  RuntimeStats stats;
  /// Per-(stage, machine, depth) tracing tree; `enabled` only when the
  /// query ran with `EngineConfig.profile` or a `PROFILE ` prefix.
  QueryProfile profile;
  std::string explain;
  /// Query lifecycle (common/abort.h): true when the run ended via the
  /// cooperative abort protocol instead of normal termination. Rows and
  /// count are then a partial prefix of the answer.
  bool aborted = false;
  AbortReason abort_reason = AbortReason::kNone;
  /// The run completed but the max_exploration_depth safety valve pruned
  /// exploration, so the result set may be incomplete. Reported through
  /// the same reason channel (kDepthTruncated) without aborting.
  bool truncated = false;
};

class DistributedEngine;

/// Cancellation handle for one scheduled run (concurrent serving). The
/// scheduler creates one per submission and hands it to the engine; the
/// engine attaches the run's abort controller + network while the run is
/// live. `cancel` works at any point in the lifecycle: before dispatch
/// it records a pending reason that attach() applies (so a cancel racing
/// the dispatch is never lost), during the run it drives the normal
/// cooperative abort broadcast, and after completion it is a no-op.
class RunControl {
 public:
  /// Requests a cooperative abort of the associated run. Returns true
  /// when the run will observe the request (live, or not yet started);
  /// false when the run already finished.
  bool cancel(AbortReason reason);

 private:
  friend class DistributedEngine;
  void attach(AbortController* ctrl, Network* net);
  void detach();

  std::mutex mutex_;
  AbortController* ctrl_ = nullptr;
  Network* net_ = nullptr;
  AbortReason pending_ = AbortReason::kNone;  // cancel before attach
  bool finished_ = false;
};

/// A parsed + planned query that can be executed repeatedly without
/// re-compilation. Valid as long as the owning engine lives.
class PreparedQuery {
 public:
  QueryResult run();
  const ExecPlan& plan() const { return *plan_; }
  const std::string& explain() const { return plan_->explain; }

 private:
  friend class DistributedEngine;
  DistributedEngine* engine_ = nullptr;
  std::shared_ptr<const ExecPlan> plan_;
};

class DistributedEngine {
 public:
  /// The machine count is taken from the partitioned graph; the config's
  /// num_machines field is ignored here.
  DistributedEngine(std::shared_ptr<const PartitionedGraph> graph,
                    EngineConfig config);

  /// Parses, plans, and executes a PGQL query. A case-insensitive
  /// `PROFILE ` prefix enables per-query profiling for this query only
  /// (the result's QueryProfile tree is populated).
  QueryResult execute(std::string_view pgql);

  /// Parses and plans once; the returned query executes repeatedly.
  PreparedQuery prepare(std::string_view pgql);

  /// Parse + plan for the async serving path: a case-insensitive
  /// `PROFILE ` prefix is reported through `*profile_out` (never
  /// mutating the engine config). Throws QueryError like execute().
  std::shared_ptr<const ExecPlan> compile(std::string_view pgql,
                                          bool* profile_out) const;

  /// Executes an already-compiled plan.
  QueryResult execute_plan(const ExecPlan& plan);

  /// Concurrent-serving entry point (used by the QueryScheduler): runs
  /// an already-compiled plan under a caller-supplied per-query config
  /// (credit partition share, sliced budgets, profiling), registering
  /// the run on `rc` (may be null) for targeted cancellation.
  QueryResult execute_plan(const ExecPlan& plan, const EngineConfig& cfg,
                           RunControl* rc);

  /// Same, against an explicit pinned snapshot (online updates,
  /// DESIGN.md §12). The scheduler pins the snapshot at ADMISSION — before
  /// its result-cache probe — so a cached entry admitted for this query's
  /// epoch and the execution it may lead both describe the same graph.
  /// Null runs against the engine's current snapshot.
  QueryResult execute_plan(const ExecPlan& plan, const EngineConfig& cfg,
                           RunControl* rc,
                           std::shared_ptr<const GraphSnapshot> snapshot);

  /// The snapshot new queries pin at admission.
  std::shared_ptr<const GraphSnapshot> current_snapshot() const;
  /// Publishes a snapshot (Database::apply_update / merge). Must happen
  /// AFTER the cache coherence notifications for the same epoch, so a
  /// query can never pin an epoch the caches have not yet heard about.
  void install_snapshot(std::shared_ptr<const GraphSnapshot> snapshot);

  /// Compiles a query and returns its EXPLAIN text without running it.
  std::string explain(std::string_view pgql) const;

  const EngineConfig& config() const { return config_; }
  /// Direct mutable access for the single-threaded configuration phase
  /// (tests and benches tune knobs between queries). NOT safe while
  /// queries are in flight — concurrent runs snapshot the config via
  /// config_snapshot(); use set_fault_plan for the one mutation that is
  /// legal mid-serving.
  EngineConfig& mutable_config() { return config_; }
  /// Coherent copy of the engine config, taken under the config lock so
  /// it can run concurrently with set_fault_plan. Every run starts from
  /// such a snapshot.
  EngineConfig config_snapshot() const;
  /// Installs a fault plan under the config lock (safe while queries are
  /// in flight; the new plan applies to runs dispatched afterwards).
  void set_fault_plan(const FaultPlan& plan);
  const PartitionedGraph& graph() const { return *graph_; }

  /// Requests a user cancel (AbortReason::kUserCancel) on every query
  /// currently executing on this engine; returns how many were live.
  /// Each aborts cooperatively and returns a clean QueryResult.
  unsigned cancel_all();

  // ---- cross-query reachability cache (DESIGN.md §11) -------------------
  // Per-machine caches surviving across queries, lazily built on the
  // first run with `reach_cache_max_bytes > 0`. The engine disables the
  // cache entirely at >= 255 machines (machine byte 0xFF is the stable
  // rpid marker — rpq/rpid.h).

  /// Epoch-based invalidation: drops every cached fact on every machine
  /// and rejects harvests from runs seeded under the old epoch.
  void bump_reach_cache_epoch();
  /// Partition-granular variant (online updates): bumps only the listed
  /// machines' caches. Correctness does not depend on it — seeds are
  /// inert sentinels — but stale facts on a dirtied partition waste
  /// probes and would be re-harvested, so they are dropped eagerly.
  void bump_reach_cache_epochs(const std::vector<MachineId>& machines);
  /// Aggregated counters over the per-machine caches (zeroes before the
  /// first cache-enabled run).
  ReachCacheStats reach_cache_stats() const;
  /// One machine's cache, or nullptr before the caches exist (tests:
  /// poisoning sweeps and direct eviction checks).
  ReachCache* reach_cache(unsigned machine);

  /// Restarts the per-engine run counter that crash-stop fault plans
  /// match against (FaultPlan::crash_run). Called when a new fault
  /// schedule is installed so "crash on run N" counts from that point.
  void reset_fault_run_index() {
    fault_run_seq_.store(0, std::memory_order_relaxed);
  }

 private:
  QueryResult run_plan(const ExecPlan& plan, bool profile);
  QueryResult run_plan_cfg(const ExecPlan& plan, EngineConfig cfg,
                           RunControl* rc,
                           std::shared_ptr<const GraphSnapshot> snapshot);
  /// Lazily builds (or re-budgets) the per-machine caches.
  void ensure_reach_caches(std::uint64_t max_bytes_per_machine);

  std::shared_ptr<const PartitionedGraph> graph_;
  // Current graph snapshot (RCU-style): swapped by install_snapshot,
  // pinned (shared_ptr copy) by every run at admission.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const GraphSnapshot> snapshot_;
  // Engine configuration. config_mutex_ covers the snapshot taken at the
  // start of every run and the mid-serving mutations (set_fault_plan);
  // mutable_config() writes are only legal while no query is in flight.
  mutable std::mutex config_mutex_;
  EngineConfig config_;
  // Live-run registry for cancel_all: each run_plan registers its abort
  // controller + network for the duration of the run (guarded so a
  // concurrent cancel never touches a dying Network).
  struct ActiveRun {
    AbortController* ctrl;
    Network* net;
  };
  std::mutex active_mutex_;
  std::vector<ActiveRun> active_runs_;
  // Cross-query reachability caches, one per machine (lazily built; the
  // vector never shrinks once built, so element pointers stay stable for
  // the engine's lifetime and runs use them without the mutex).
  mutable std::mutex reach_cache_mutex_;
  std::vector<std::unique_ptr<ReachCache>> reach_caches_;
  // Concurrency audit: these two counters are deliberately ENGINE-GLOBAL
  // across concurrent queries. fault_run_seq_ assigns each run a unique
  // index so a crash-stop plan kills exactly one run in a concurrent
  // wave (the simulated cluster loses a machine once, not once per
  // query); epoch_seq_ assigns each run a unique epoch so stale
  // in-flight data can never cross runs. Both are atomics — a fetch_add
  // per run, never aliasing per-query *measurements*.
  std::atomic<std::uint64_t> fault_run_seq_{0};
  std::atomic<std::uint32_t> epoch_seq_{0};
};

}  // namespace rpqd
