// Compiled filter/projection expressions.
//
// At planning time every AST expression is compiled against the catalog
// and the context-slot layout: variable references become either
// "current vertex" accesses (when the variable is being matched at the
// stage that evaluates the expression) or context-slot reads (when the
// value was materialized by an earlier stage, possibly on a different
// machine — contexts travel inside messages, the graph does not).
//
// String literals that exist in the catalog's dictionary are folded to
// dictionary ids (O(1) equality); unknown strings are kept as text and
// compared lexicographically against dictionary strings.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/snapshot.h"
#include "pgql/ast.h"

namespace rpqd {

/// Everything an expression may read at evaluation time. Graph access
/// goes through the snapshot view types (graph/snapshot.h) so filters
/// evaluate against the exact epoch the query pinned at admission.
struct EvalCtx {
  const PartitionView* part = nullptr;
  const Catalog* catalog = nullptr;
  /// Local id of the vertex currently being matched (kInvalidLocalVertex
  /// when the expression must not touch the current vertex).
  LocalVertexId current = kInvalidLocalVertex;
  /// Context slots of the traversal.
  const Value* slots = nullptr;
  /// Edge access for edge-property references (nullptr outside hops).
  const ViewAdjacency* adj = nullptr;
  std::size_t entry_idx = 0;
};

/// Evaluation result: a Value, optionally backed by out-of-dictionary
/// text (unknown string literals, label() results).
struct EvalValue {
  Value v;
  const std::string* text = nullptr;  // set iff v.type == kString && text form

  static EvalValue of(Value value) { return {value, nullptr}; }
  static EvalValue of_text(const std::string& t) {
    return {Value{ValueType::kString, 0}, &t};
  }
  bool is_null() const { return v.type == ValueType::kNull && text == nullptr; }
};

class CompiledExpr {
 public:
  enum class Kind : std::uint8_t {
    kConst,        // folded literal (including dictionary-hit strings)
    kConstText,    // string literal absent from the dictionary
    kSlot,         // context slot read
    kCurrentProp,  // property of the current vertex
    kCurrentId,    // id(current)
    kCurrentLabel, // label(current)
    kEdgeProp,     // property of the edge being traversed
    kUnary,
    kBinary,
  };

  CompiledExpr() = default;

  EvalValue evaluate(const EvalCtx& ctx) const;

  /// Evaluates as a filter: null / non-bool results are false.
  bool evaluate_bool(const EvalCtx& ctx) const;

  /// True if any node reads the current vertex.
  bool reads_current() const;
  /// True if any node reads an edge property.
  bool reads_edge() const;
  /// True if any node reads a context slot — such an expression's value
  /// depends on the traversal's history, so a stage filtering on it is
  /// not shareable across queries (cross-query cache eligibility).
  bool reads_slot() const;

  std::string debug_text() const;

  // Factories (used by the planner).
  static CompiledExpr constant(Value v);
  static CompiledExpr constant_text(std::string text);
  static CompiledExpr slot(SlotId s);
  static CompiledExpr current_prop(PropId p);
  static CompiledExpr current_id();
  static CompiledExpr current_label();
  static CompiledExpr edge_prop(PropId p);
  static CompiledExpr unary(pgql::UnOp op, CompiledExpr operand);
  static CompiledExpr binary(pgql::BinOp op, CompiledExpr lhs,
                             CompiledExpr rhs);

 private:
  Kind kind_ = Kind::kConst;
  Value const_value_{};
  std::string text_;
  SlotId slot_ = kInvalidSlot;
  PropId prop_ = kInvalidProp;
  pgql::BinOp bin_op_{};
  pgql::UnOp un_op_{};
  std::unique_ptr<CompiledExpr> lhs_;
  std::unique_ptr<CompiledExpr> rhs_;

 public:
  // Deep-copyable (plans duplicate filters across stages).
  CompiledExpr(const CompiledExpr& other) { *this = other; }
  CompiledExpr& operator=(const CompiledExpr& other);
  CompiledExpr(CompiledExpr&&) noexcept = default;
  CompiledExpr& operator=(CompiledExpr&&) noexcept = default;
  ~CompiledExpr() = default;
};

/// Three-way comparison with string/text normalization; nullopt = unknown.
std::optional<int> compare_values(const EvalValue& a, const EvalValue& b,
                                  const Catalog& catalog);

}  // namespace rpqd
