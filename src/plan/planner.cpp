#include "plan/planner.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.h"

namespace rpqd {

namespace {

using pgql::BinOp;
using pgql::EdgePattern;
using pgql::Expr;
using pgql::ExprKind;
using pgql::PathMacro;
using pgql::PatternChain;
using pgql::Query;
using pgql::UnOp;
using pgql::VertexPattern;

// ------------------------------------------------------------ pattern IR --

struct VarInfo {
  std::string name;
  std::vector<std::string> labels;  // merged; empty = unconstrained
  bool constrained = false;         // had any label constraint
  bool impossible = false;          // conflicting label constraints
  int weight = 0;                   // selectivity score for heuristics
  int bind_pos = -1;                // op index binding this var
};

struct CEdge {
  int id = 0;
  std::string src, dst;
  Direction dir = Direction::kOut;
  std::vector<std::string> labels;
  std::string edge_var;
  bool is_rpq = false;
  pgql::Quantifier quant;
  const PathMacro* macro = nullptr;  // resolved macro (RPQ only)
  std::vector<std::string> rpq_labels;  // plain-label RPQ alternation
  bool used = false;
};

struct Conjunct {
  const Expr* expr = nullptr;
  std::vector<std::string> vars;
};

enum class OpKind { kStart, kNeighbor, kEdgeCheck, kRpq };

struct Op {
  OpKind kind = OpKind::kStart;
  CEdge* edge = nullptr;
  std::string from, to;  // kStart: only `to`
  bool reversed = false;  // traversal enters the pattern edge at its dst
  std::string inspect_var;  // non-empty: inspection hop to this var first
  // Filled during placement:
  std::vector<const Expr*> conjuncts;  // evaluated at this op's match stage
  std::vector<const Expr*> iter_conjuncts;   // RPQ per-iteration filters
  std::vector<const Expr*> edge_conjuncts;   // sender-side edge filters
};

// ------------------------------------------------------------ utilities --

void flatten_and(const Expr* e, std::vector<const Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kAnd) {
    flatten_and(e->lhs.get(), out);
    flatten_and(e->rhs.get(), out);
    return;
  }
  out.push_back(e);
}

// Intersects label alternations; empty `add` means unconstrained.
void merge_labels(VarInfo& var, const std::vector<std::string>& add) {
  if (add.empty()) return;
  if (!var.constrained) {
    var.labels = add;
    var.constrained = true;
    return;
  }
  std::vector<std::string> kept;
  for (const auto& l : var.labels) {
    if (std::find(add.begin(), add.end(), l) != add.end()) kept.push_back(l);
  }
  var.labels = std::move(kept);
  if (var.labels.empty()) var.impossible = true;
}

// Detects `ID(var) = <int>` (either operand order); returns the literal.
std::optional<std::int64_t> single_match_literal(const Expr& e,
                                                 const std::string& var) {
  if (e.kind != ExprKind::kBinary || e.bin_op != BinOp::kEq) return std::nullopt;
  const Expr* fn = nullptr;
  const Expr* lit = nullptr;
  if (e.lhs->kind == ExprKind::kIdFunc) {
    fn = e.lhs.get();
    lit = e.rhs.get();
  } else if (e.rhs->kind == ExprKind::kIdFunc) {
    fn = e.rhs.get();
    lit = e.lhs.get();
  } else {
    return std::nullopt;
  }
  if (fn->text != var || lit->kind != ExprKind::kIntLit) return std::nullopt;
  return lit->int_value;
}

// --------------------------------------------------------- slot allocator --

class SlotAllocator {
 public:
  SlotId slot_of(const std::string& key) {
    const auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const auto id = static_cast<SlotId>(keys_.size());
    keys_.push_back(key);
    index_.emplace(key, id);
    return id;
  }

  std::optional<SlotId> find(const std::string& key) const {
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  unsigned count() const { return static_cast<unsigned>(keys_.size()); }
  const std::vector<std::string>& keys() const { return keys_; }

 private:
  std::vector<std::string> keys_;
  std::unordered_map<std::string, SlotId> index_;
};

std::string vkey(const std::string& var) { return "v:" + var; }
std::string pkey(const std::string& var, const std::string& prop) {
  return "p:" + var + "." + prop;
}
// Macro-scoped keys are namespaced by the op index so two uses of the same
// macro do not collide.
std::string mvkey(std::size_t op, const std::string& var) {
  return "mv:" + std::to_string(op) + ":" + var;
}
std::string mpkey(std::size_t op, const std::string& var,
                  const std::string& prop) {
  return "mp:" + std::to_string(op) + ":" + var + "." + prop;
}
std::string ekey(int edge_id, const std::string& prop) {
  return "e:" + std::to_string(edge_id) + "." + prop;
}

// ---------------------------------------------------------- the planner --

class Planner {
 public:
  Planner(const Query& query, const Catalog& catalog)
      : q_(query), cat_(catalog) {}

  ExecPlan run() {
    collect_macros();
    collect_pattern();
    split_where();
    score_vars();
    order_operators();
    place_conjuncts();
    analyze_needs();
    emit_stages();
    finalize();
    return std::move(plan_);
  }

 private:
  // ------------------------------------------------------------ collect --
  void collect_macros() {
    for (const auto& m : q_.path_macros) {
      if (macros_.count(m.name) != 0) {
        throw QueryError("duplicate PATH macro '" + m.name + "'");
      }
      if (m.pattern.hops.empty()) {
        throw UnsupportedError("PATH macro '" + m.name +
                               "' must contain at least one edge");
      }
      for (const auto& hop : m.pattern.hops) {
        if (hop.edge.is_rpq) {
          throw UnsupportedError("nested RPQ inside PATH macro '" + m.name +
                                 "' is not supported");
        }
      }
      macros_.emplace(m.name, &m);
    }
  }

  VarInfo& var(const std::string& name) {
    const auto it = var_index_.find(name);
    if (it != var_index_.end()) return vars_[it->second];
    var_index_.emplace(name, vars_.size());
    vars_.push_back(VarInfo{name, {}, false, false, 0, -1});
    return vars_.back();
  }

  bool has_var(const std::string& name) const {
    return var_index_.count(name) != 0;
  }

  void collect_pattern() {
    if (q_.match.empty()) throw QueryError("query has no MATCH pattern");
    for (const auto& chain : q_.match) {
      merge_labels(var(chain.src.var), chain.src.labels);
      std::string prev = chain.src.var;
      for (const auto& hop : chain.hops) {
        merge_labels(var(hop.dst.var), hop.dst.labels);
        CEdge e;
        e.id = static_cast<int>(edges_.size());
        e.src = prev;
        e.dst = hop.dst.var;
        e.dir = hop.edge.dir;
        e.labels = hop.edge.labels;
        e.edge_var = hop.edge.var;
        e.is_rpq = hop.edge.is_rpq;
        e.quant = hop.edge.quantifier;
        if (e.is_rpq && e.dir == Direction::kIn) {
          // Normalize `<-/:p/-` so the RPQ's logical source is e.src:
          // the path pattern runs from the right-hand vertex.
          std::swap(e.src, e.dst);
          e.dir = Direction::kOut;
        }
        if (e.is_rpq) {
          if (!hop.edge.path_name.empty()) {
            const auto it = macros_.find(hop.edge.path_name);
            if (it != macros_.end()) {
              e.macro = it->second;
            } else {
              e.rpq_labels = {hop.edge.path_name};  // plain label RPQ
            }
          } else {
            e.rpq_labels = hop.edge.labels;  // label alternation RPQ
            e.labels.clear();
          }
        }
        if (!e.edge_var.empty()) {
          if (edge_vars_.count(e.edge_var) != 0) {
            throw UnsupportedError("edge variable '" + e.edge_var +
                                   "' bound more than once");
          }
          edge_vars_.emplace(e.edge_var, e.id);
        }
        edges_.push_back(std::move(e));
        prev = hop.dst.var;
      }
    }
    // Macro-internal variable sets (per macro), used for WHERE scoping.
    for (const auto& [name, m] : macros_) {
      auto& set = macro_vars_[name];
      set.insert(m->pattern.src.var);
      for (const auto& hop : m->pattern.hops) {
        set.insert(hop.dst.var);
        if (!hop.edge.var.empty()) macro_edge_vars_[name].insert(hop.edge.var);
      }
    }
    for (const auto& [name, id] : edge_vars_) {
      (void)id;
      if (has_var(name)) {
        throw UnsupportedError("name '" + name +
                               "' is used for both a vertex and an edge");
      }
    }
  }

  void split_where() {
    std::vector<const Expr*> exprs;
    flatten_and(q_.where.get(), exprs);
    for (const Expr* e : exprs) {
      Conjunct c;
      c.expr = e;
      pgql::collect_vars(*e, c.vars);
      conjuncts_.push_back(std::move(c));
    }
  }

  void score_vars() {
    for (auto& v : vars_) {
      if (v.constrained) v.weight += v.labels.size() == 1 ? 3 : 2;
    }
    for (const auto& c : conjuncts_) {
      if (c.vars.size() != 1) continue;
      const auto it = var_index_.find(c.vars[0]);
      if (it == var_index_.end()) continue;  // macro/edge var
      VarInfo& v = vars_[it->second];
      if (single_match_literal(*c.expr, v.name)) {
        v.weight += 1000;  // heuristic (i): single-match start
      } else if (c.expr->kind == ExprKind::kBinary &&
                 c.expr->bin_op == BinOp::kEq) {
        v.weight += 10;  // heuristic (ii): heavy (equality) filter
      } else {
        v.weight += 5;
      }
    }
  }

  // ------------------------------------------------------------ ordering --
  void order_operators() {
    // Start vertex: heuristic (i) + (ii) via weights; ties resolved by
    // first appearance for determinism.
    std::size_t best = 0;
    for (std::size_t i = 1; i < vars_.size(); ++i) {
      if (vars_[i].weight > vars_[best].weight) best = i;
    }
    Op start;
    start.kind = OpKind::kStart;
    start.to = vars_[best].name;
    ops_.push_back(start);
    vars_[best].bind_pos = 0;
    std::string current = vars_[best].name;

    auto bound = [&](const std::string& v) {
      return vars_[var_index_.at(v)].bind_pos >= 0;
    };

    std::size_t remaining = edges_.size();
    while (remaining > 0) {
      // Candidate ranking: (category, -target weight, edge id).
      int best_cat = 99;
      int best_score = -1;
      CEdge* pick = nullptr;
      for (auto& e : edges_) {
        if (e.used) continue;
        const bool bs = bound(e.src);
        const bool bd = bound(e.dst);
        if (!bs && !bd) continue;
        int cat;
        int score = 0;
        if (!e.is_rpq && bs && bd) {
          cat = 0;  // heuristic (iii): edge match over neighbor match
        } else if (e.is_rpq) {
          cat = 1;  // heuristic (iv): RPQ before plain neighbor matches
        } else {
          cat = 2;
          const auto& target = bs ? e.dst : e.src;
          score = vars_[var_index_.at(target)].weight;
        }
        if (cat < best_cat ||
            (cat == best_cat && (score > best_score ||
                                 (score == best_score && pick != nullptr &&
                                  e.id < pick->id)))) {
          best_cat = cat;
          best_score = score;
          pick = &e;
        }
      }
      if (pick == nullptr) {
        throw UnsupportedError(
            "disconnected MATCH pattern (cartesian products are not "
            "supported)");
      }
      pick->used = true;
      --remaining;

      Op op;
      op.edge = pick;
      const bool bs = bound(pick->src);
      const bool bd = bound(pick->dst);
      if (!pick->is_rpq && bs && bd) {
        op.kind = OpKind::kEdgeCheck;
        // Orient the check from the current vertex when possible.
        if (current == pick->src) {
          op.from = pick->src;
          op.to = pick->dst;
        } else if (current == pick->dst) {
          op.from = pick->dst;
          op.to = pick->src;
          op.reversed = true;
        } else {
          op.from = pick->src;
          op.to = pick->dst;
          op.inspect_var = pick->src;
        }
        ops_.push_back(op);
        if (!op.inspect_var.empty()) current = op.from;
        continue;  // binds nothing
      }
      if (pick->is_rpq) {
        op.kind = OpKind::kRpq;
        if (bs) {
          op.from = pick->src;
          op.to = pick->dst;
        } else {
          op.from = pick->dst;
          op.to = pick->src;
          op.reversed = true;
        }
      } else {
        op.kind = OpKind::kNeighbor;
        if (bs) {
          op.from = pick->src;
          op.to = pick->dst;
        } else {
          op.from = pick->dst;
          op.to = pick->src;
          op.reversed = true;
        }
      }
      if (op.from != current) op.inspect_var = op.from;
      VarInfo& target = vars_[var_index_.at(op.to)];
      if (target.bind_pos < 0) {
        target.bind_pos = static_cast<int>(ops_.size());
      } else if (op.kind == OpKind::kRpq) {
        // Cycle-closing RPQ: destination already bound.
        rpq_bound_dest_.insert(ops_.size());
      }
      ops_.push_back(op);
      current = op.to;
    }

    for (const auto& v : vars_) {
      if (v.bind_pos < 0) {
        throw UnsupportedError(
            "pattern variable '" + v.name +
            "' is not connected to the rest of the pattern");
      }
    }
    final_var_ = current;
  }

  // The op index that binds `v` (0 = start).
  int bind_pos(const std::string& v) const {
    return vars_[var_index_.at(v)].bind_pos;
  }

  // ----------------------------------------------------------- placement --
  // Returns the macro whose internal vars the conjunct references, if any.
  const PathMacro* conjunct_macro(const Conjunct& c) const {
    for (const auto& [name, vset] : macro_vars_) {
      for (const auto& v : c.vars) {
        if (vset.count(v) != 0 || (macro_edge_vars_.count(name) != 0 &&
                                   macro_edge_vars_.at(name).count(v) != 0)) {
          return macros_.at(name);
        }
      }
    }
    return nullptr;
  }

  void place_conjuncts() {
    for (auto& c : conjuncts_) {
      const PathMacro* macro = conjunct_macro(c);
      if (macro != nullptr) {
        place_macro_conjunct(c, macro);
        continue;
      }
      // Edge-variable conjuncts.
      int edge_op = -1;
      for (const auto& v : c.vars) {
        const auto it = edge_vars_.find(v);
        if (it == edge_vars_.end()) continue;
        const int op = op_of_edge(it->second);
        if (edge_op >= 0 && edge_op != op) {
          throw UnsupportedError(
              "filter references two different edge variables");
        }
        edge_op = op;
      }
      if (edge_op >= 0) {
        place_edge_conjunct(c, static_cast<std::size_t>(edge_op));
        continue;
      }
      // Plain conjunct: evaluated at the latest binding op.
      std::size_t pos = 0;
      for (const auto& v : c.vars) {
        if (!has_var(v)) {
          throw QueryError("unknown variable '" + v + "' in WHERE");
        }
        pos = std::max(pos, static_cast<std::size_t>(bind_pos(v)));
      }
      ops_[pos].conjuncts.push_back(c.expr);
    }
    // PATH macro WHERE clauses: per-iteration filters on each use.
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const Op& op = ops_[i];
      if (op.kind == OpKind::kRpq && op.edge->macro != nullptr &&
          op.edge->macro->where != nullptr) {
        ops_[i].iter_conjuncts.push_back(op.edge->macro->where.get());
      }
    }
  }

  int op_of_edge(int edge_id) const {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].edge != nullptr && ops_[i].edge->id == edge_id) {
        return static_cast<int>(i);
      }
    }
    throw EngineError("edge without op");
  }

  void place_macro_conjunct(Conjunct& c, const PathMacro* macro) {
    // Find the unique RPQ op using this macro.
    int use = -1;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].kind == OpKind::kRpq && ops_[i].edge->macro == macro) {
        if (use >= 0) {
          throw UnsupportedError(
              "WHERE references variables of PATH macro '" + macro->name +
              "' which is used by multiple RPQ segments");
        }
        use = static_cast<int>(i);
      }
    }
    if (use < 0) {
      throw QueryError("WHERE references variables of unused PATH macro '" +
                       macro->name + "'");
    }
    // Outer variables must be bound before the RPQ runs for per-iteration
    // evaluation; otherwise the filter degrades to a final filter over the
    // last iteration's values.
    bool late = false;
    const auto& internals = macro_vars_.at(macro->name);
    for (const auto& v : c.vars) {
      if (internals.count(v) != 0) continue;
      if (macro_edge_vars_.count(macro->name) != 0 &&
          macro_edge_vars_.at(macro->name).count(v) != 0) {
        continue;
      }
      if (!has_var(v)) {
        throw QueryError("unknown variable '" + v + "' in WHERE");
      }
      if (bind_pos(v) > use) late = true;
    }
    if (late) {
      final_macro_conjuncts_.emplace_back(c.expr,
                                          static_cast<std::size_t>(use));
    } else {
      ops_[use].iter_conjuncts.push_back(c.expr);
    }
  }

  void place_edge_conjunct(Conjunct& c, std::size_t op_pos) {
    // Sender-side if every non-edge var is bound strictly before the hop
    // lands (i.e., at or before the hop's source); otherwise the edge
    // properties are materialized into slots and the filter runs at the
    // latest binding op like a plain conjunct.
    bool sender_side = true;
    std::size_t latest = op_pos;
    for (const auto& v : c.vars) {
      if (edge_vars_.count(v) != 0) continue;
      if (!has_var(v)) throw QueryError("unknown variable '" + v + "' in WHERE");
      const auto pos = static_cast<std::size_t>(bind_pos(v));
      if (pos >= op_pos) sender_side = false;
      latest = std::max(latest, pos);
    }
    if (sender_side) {
      ops_[op_pos].edge_conjuncts.push_back(c.expr);
    } else {
      // Materialize the referenced edge properties during the hop.
      materialized_edge_conjuncts_.emplace_back(c.expr, op_pos);
      ops_[latest].conjuncts.push_back(c.expr);
    }
  }

  // --------------------------------------------------------------- needs --
  // Walks an expression, recording slot needs for every variable that is
  // not `current_var` in the evaluation environment of `op` (outer scope).
  void need_expr(const Expr& e, const std::string& current_var) {
    switch (e.kind) {
      case ExprKind::kPropRef:
        if (e.text != current_var && has_var(e.text)) {
          slots_.slot_of(pkey(e.text, e.prop));
        }
        break;
      case ExprKind::kIdFunc:
        if (e.text != current_var && has_var(e.text)) {
          slots_.slot_of(vkey(e.text));
        }
        break;
      case ExprKind::kLabelFunc:
        if (e.text != current_var && has_var(e.text)) {
          throw UnsupportedError(
              "label() of a non-current vertex is not supported");
        }
        break;
      default:
        break;
    }
    if (e.lhs) need_expr(*e.lhs, current_var);
    if (e.rhs) need_expr(*e.rhs, current_var);
  }

  // Macro-scope version: macro vars get op-scoped slots unless current.
  void need_macro_expr(const Expr& e, std::size_t op,
                       const std::string& current_var,
                       const std::unordered_set<std::string>& internals) {
    switch (e.kind) {
      case ExprKind::kPropRef:
      case ExprKind::kIdFunc:
        if (e.text == current_var) break;
        if (internals.count(e.text) != 0) {
          if (e.kind == ExprKind::kPropRef) {
            slots_.slot_of(mpkey(op, e.text, e.prop));
          } else {
            slots_.slot_of(mvkey(op, e.text));
          }
        } else if (has_var(e.text)) {
          if (e.kind == ExprKind::kPropRef) {
            slots_.slot_of(pkey(e.text, e.prop));
          } else {
            slots_.slot_of(vkey(e.text));
          }
        }
        break;
      case ExprKind::kLabelFunc:
        throw UnsupportedError("label() inside path filters is not supported");
      default:
        break;
    }
    if (e.lhs) need_macro_expr(*e.lhs, op, current_var, internals);
    if (e.rhs) need_macro_expr(*e.rhs, op, current_var, internals);
  }

  // The (oriented) macro chain of an RPQ op: vertices v0..vH and hops.
  struct OrientedChain {
    std::vector<const VertexPattern*> verts;
    struct OHop {
      const EdgePattern* edge;
      Direction dir;
    };
    std::vector<OHop> hops;  // hops[i] connects verts[i] -> verts[i+1]
  };

  OrientedChain oriented_chain(const Op& op) const {
    OrientedChain chain;
    if (op.edge->macro != nullptr) {
      const PatternChain& p = op.edge->macro->pattern;
      chain.verts.push_back(&p.src);
      for (const auto& hop : p.hops) {
        chain.verts.push_back(&hop.dst);
        chain.hops.push_back({&hop.edge, hop.edge.dir});
      }
    } else {
      // Implicit single-edge pattern from a plain-label RPQ; direction of
      // the inner hop is the RPQ arrow itself.
      static const VertexPattern anon_src{"_rpq_src", {}};
      static const VertexPattern anon_dst{"_rpq_dst", {}};
      static EdgePattern edge;  // labels filled per-op below (copy)
      chain.verts.push_back(&anon_src);
      chain.verts.push_back(&anon_dst);
      chain.hops.push_back({&edge, op.edge->dir});
    }
    if (op.reversed) {
      std::reverse(chain.verts.begin(), chain.verts.end());
      std::reverse(chain.hops.begin(), chain.hops.end());
      for (auto& h : chain.hops) h.dir = reverse(h.dir);
    }
    return chain;
  }

  // Position (0-based vertex index) of a macro var in the oriented chain;
  // -1 if absent.
  static int chain_pos(const OrientedChain& chain, const std::string& var) {
    for (std::size_t i = 0; i < chain.verts.size(); ++i) {
      if (chain.verts[i]->var == var) return static_cast<int>(i);
    }
    return -1;
  }

  void analyze_needs() {
    // Hop targets need vertex slots.
    for (auto& op : ops_) {
      if (!op.inspect_var.empty()) slots_.slot_of(vkey(op.inspect_var));
      if (op.kind == OpKind::kEdgeCheck) slots_.slot_of(vkey(op.to));
    }
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (rpq_bound_dest_.count(i) != 0) slots_.slot_of(vkey(ops_[i].to));
    }
    // Conjuncts at their placement stage.
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const Op& op = ops_[i];
      const std::string current =
          op.kind == OpKind::kEdgeCheck ? std::string() : op.to;
      for (const Expr* e : op.conjuncts) need_expr(*e, current);
      for (const Expr* e : op.edge_conjuncts) {
        // Sender-side: nothing may read a current vertex.
        need_expr(*e, std::string());
      }
      if (op.kind == OpKind::kRpq) {
        const auto& internals = op.edge->macro != nullptr
                                    ? macro_vars_.at(op.edge->macro->name)
                                    : empty_set_;
        const OrientedChain chain = oriented_chain(op);
        for (const Expr* e : op.iter_conjuncts) {
          const IterAnchor anchor =
              classify_iter(chain, *e, internals, macro_edge_set(op));
          need_macro_expr(*e, i, anchor.current, internals);
        }
      }
    }
    // Final (late) macro conjuncts and projections: current = final var.
    for (const auto& [e, op] : final_macro_conjuncts_) {
      const auto& internals = ops_[op].edge->macro != nullptr
                                  ? macro_vars_.at(ops_[op].edge->macro->name)
                                  : empty_set_;
      need_macro_expr(*e, op, final_var_, internals);
    }
    for (const auto& item : q_.select) {
      if (item.expr != nullptr) need_projection_expr(*item.expr);
    }
    for (const auto& key : q_.group_by) {
      need_projection_expr(*key);
    }
    // Materialized edge-property conjuncts.
    for (const auto& [e, op_pos] : materialized_edge_conjuncts_) {
      need_edge_props(*e, ops_[op_pos].edge->id);
    }
  }

  // Where a per-iteration conjunct evaluates inside the path-stage ring:
  // either anchored to a hop (it reads a macro edge variable; evaluated as
  // a sender-side edge filter on that hop) or to the chain vertex with the
  // largest position among referenced macro vars (v0 if none).
  struct IterAnchor {
    int hop = -1;         // >= 0: edge filter on chain hop `hop`
    std::string current;  // vertex var whose stage evaluates the filter
  };

  IterAnchor classify_iter(const OrientedChain& chain, const Expr& e,
                           const std::unordered_set<std::string>& internals,
                           const std::unordered_set<std::string>& edge_vars) {
    std::vector<std::string> vars;
    pgql::collect_vars(e, vars);
    IterAnchor anchor;
    std::string macro_edge;
    for (const auto& v : vars) {
      if (edge_vars.count(v) == 0) continue;
      if (!macro_edge.empty() && macro_edge != v) {
        throw UnsupportedError(
            "path filter references two different edge variables");
      }
      macro_edge = v;
    }
    int best = 0;
    for (const auto& v : vars) {
      if (internals.count(v) == 0) continue;
      best = std::max(best, chain_pos(chain, v));
    }
    if (!macro_edge.empty()) {
      for (std::size_t h = 0; h < chain.hops.size(); ++h) {
        if (chain.hops[h].edge->var == macro_edge) {
          anchor.hop = static_cast<int>(h);
          break;
        }
      }
      engine_check(anchor.hop >= 0, "macro edge variable without a hop");
      if (best > anchor.hop) {
        throw UnsupportedError(
            "path filter reads a vertex matched after its edge variable");
      }
      anchor.current = chain.verts[static_cast<std::size_t>(anchor.hop)]->var;
      return anchor;
    }
    anchor.current = chain.verts[static_cast<std::size_t>(best)]->var;
    return anchor;
  }

  const std::unordered_set<std::string>& macro_edge_set(const Op& op) const {
    if (op.edge->macro != nullptr) {
      const auto it = macro_edge_vars_.find(op.edge->macro->name);
      if (it != macro_edge_vars_.end()) return it->second;
    }
    return empty_set_;
  }

  void need_projection_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kPropRef:
      case ExprKind::kIdFunc: {
        if (e.text == final_var_) break;
        if (has_var(e.text)) {
          slots_.slot_of(e.kind == ExprKind::kPropRef ? pkey(e.text, e.prop)
                                                      : vkey(e.text));
          break;
        }
        // Macro variable? Resolve against the chain of each RPQ op.
        bool found = false;
        for (std::size_t i = 0; i < ops_.size() && !found; ++i) {
          if (ops_[i].kind != OpKind::kRpq) continue;
          const auto& internals =
              ops_[i].edge->macro != nullptr
                  ? macro_vars_.at(ops_[i].edge->macro->name)
                  : empty_set_;
          if (internals.count(e.text) != 0) {
            slots_.slot_of(e.kind == ExprKind::kPropRef
                               ? mpkey(i, e.text, e.prop)
                               : mvkey(i, e.text));
            found = true;
          }
        }
        if (!found) {
          throw QueryError("unknown variable '" + e.text + "' in SELECT");
        }
        break;
      }
      case ExprKind::kLabelFunc:
        if (e.text != final_var_) {
          throw UnsupportedError(
              "label() of a non-final vertex in SELECT is not supported");
        }
        break;
      default:
        break;
    }
    if (e.lhs) need_projection_expr(*e.lhs);
    if (e.rhs) need_projection_expr(*e.rhs);
  }

  void need_edge_props(const Expr& e, int edge_id) {
    if (e.kind == ExprKind::kPropRef && edge_vars_.count(e.text) != 0 &&
        edge_vars_.at(e.text) == edge_id) {
      slots_.slot_of(ekey(edge_id, e.prop));
    }
    if (e.lhs) need_edge_props(*e.lhs, edge_id);
    if (e.rhs) need_edge_props(*e.rhs, edge_id);
  }

  // ------------------------------------------------------- expr compiler --
  struct Env {
    std::string current;            // vertex var matched at this stage
    std::size_t rpq_op = SIZE_MAX;  // macro scope (SIZE_MAX = none)
    const std::unordered_set<std::string>* internals = nullptr;
    int hop_edge_id = -1;            // outer edge var readable via kEdgeProp
    std::string hop_macro_edge_var;  // macro edge var readable via kEdgeProp
  };

  CompiledExpr compile(const Expr& e, const Env& env) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return CompiledExpr::constant(int_value(e.int_value));
      case ExprKind::kDoubleLit:
        return CompiledExpr::constant(double_value(e.double_value));
      case ExprKind::kBoolLit:
        return CompiledExpr::constant(bool_value(e.bool_value));
      case ExprKind::kStringLit: {
        const auto id = cat_.find_string(e.text);
        if (id) return CompiledExpr::constant(string_value(*id));
        return CompiledExpr::constant_text(e.text);
      }
      case ExprKind::kPropRef: {
        // Macro edge variable readable at the current hop?
        if (!env.hop_macro_edge_var.empty() &&
            e.text == env.hop_macro_edge_var) {
          const auto prop = cat_.find_property(e.prop);
          if (!prop) return CompiledExpr::constant(null_value());
          return CompiledExpr::edge_prop(*prop);
        }
        // Edge variable?
        const auto ev = edge_vars_.find(e.text);
        if (ev != edge_vars_.end()) {
          const auto prop = cat_.find_property(e.prop);
          if (ev->second == env.hop_edge_id) {
            if (!prop) return CompiledExpr::constant(null_value());
            return CompiledExpr::edge_prop(*prop);
          }
          const auto slot = slots_.find(ekey(ev->second, e.prop));
          if (slot) return CompiledExpr::slot(*slot);
          throw UnsupportedError("edge variable '" + e.text +
                                 "' is not accessible here");
        }
        // Macro variable?
        if (env.internals != nullptr && env.internals->count(e.text) != 0) {
          if (e.text == env.current) {
            const auto prop = cat_.find_property(e.prop);
            if (!prop) return CompiledExpr::constant(null_value());
            return CompiledExpr::current_prop(*prop);
          }
          const auto slot = slots_.find(mpkey(env.rpq_op, e.text, e.prop));
          engine_check(slot.has_value(), "macro prop slot missing");
          return CompiledExpr::slot(*slot);
        }
        if (e.text == env.current) {
          const auto prop = cat_.find_property(e.prop);
          if (!prop) return CompiledExpr::constant(null_value());
          return CompiledExpr::current_prop(*prop);
        }
        {
          const auto slot = slots_.find(pkey(e.text, e.prop));
          if (slot) return CompiledExpr::slot(*slot);
        }
        // Macro var referenced in SELECT/final filters outside its env.
        for (std::size_t i = 0; i < ops_.size(); ++i) {
          const auto slot = slots_.find(mpkey(i, e.text, e.prop));
          if (slot) return CompiledExpr::slot(*slot);
        }
        throw QueryError("unknown variable '" + e.text + "'");
      }
      case ExprKind::kIdFunc: {
        if (env.internals != nullptr && env.internals->count(e.text) != 0) {
          if (e.text == env.current) return CompiledExpr::current_id();
          const auto slot = slots_.find(mvkey(env.rpq_op, e.text));
          engine_check(slot.has_value(), "macro vertex slot missing");
          return CompiledExpr::slot(*slot);
        }
        if (e.text == env.current) return CompiledExpr::current_id();
        {
          const auto slot = slots_.find(vkey(e.text));
          if (slot) return CompiledExpr::slot(*slot);
        }
        for (std::size_t i = 0; i < ops_.size(); ++i) {
          const auto slot = slots_.find(mvkey(i, e.text));
          if (slot) return CompiledExpr::slot(*slot);
        }
        throw QueryError("unknown variable '" + e.text + "'");
      }
      case ExprKind::kLabelFunc: {
        if (e.text == env.current) return CompiledExpr::current_label();
        throw UnsupportedError("label() of a non-current vertex");
      }
      case ExprKind::kUnary:
        return CompiledExpr::unary(e.un_op, compile(*e.lhs, env));
      case ExprKind::kBinary:
        return CompiledExpr::binary(e.bin_op, compile(*e.lhs, env),
                                    compile(*e.rhs, env));
    }
    throw EngineError("unhandled expression kind");
  }

  // ------------------------------------------------------------ emission --
  std::vector<LabelId> resolve_vlabels(const std::vector<std::string>& names,
                                       bool* impossible) {
    std::vector<LabelId> out;
    for (const auto& n : names) {
      const auto id = cat_.find_vertex_label(n);
      if (id) out.push_back(*id);
    }
    if (!names.empty() && out.empty()) *impossible = true;
    return out;
  }

  std::vector<LabelId> resolve_elabels(const std::vector<std::string>& names,
                                       bool* impossible) {
    std::vector<LabelId> out;
    for (const auto& n : names) {
      const auto id = cat_.find_edge_label(n);
      if (id) out.push_back(*id);
    }
    if (!names.empty() && out.empty()) *impossible = true;
    return out;
  }

  StagePlan& new_stage(StageKind kind, const std::string& note) {
    StagePlan s;
    s.id = static_cast<StageId>(plan_.stages.size());
    s.kind = kind;
    s.note = note;
    plan_.stages.push_back(std::move(s));
    return plan_.stages.back();
  }

  // Adds the vertex-match parts for pattern var `v` to stage `s`:
  // label constraint, filters placed at op `pos`, and slot actions.
  void fill_vertex_match(StagePlan& s, const std::string& v, std::size_t pos) {
    const VarInfo& info = vars_[var_index_.at(v)];
    bool impossible = info.impossible;
    s.vlabels = resolve_vlabels(info.labels, &impossible);
    if (impossible) {
      s.filters.push_back(CompiledExpr::constant(bool_value(false)));
    }
    Env env;
    env.current = v;
    for (const Expr* e : ops_[pos].conjuncts) {
      s.filters.push_back(compile(*e, env));
    }
    // Actions: vertex slot + any property slots for this var.
    if (const auto slot = slots_.find(vkey(v))) {
      s.actions.push_back({SlotAction::Kind::kStoreVertex, *slot, kInvalidProp});
    }
    for (const auto& key : slots_.keys()) {
      if (key.rfind("p:" + v + ".", 0) == 0) {
        const std::string prop_name = key.substr(key.find('.') + 1);
        const auto prop = cat_.find_property(prop_name);
        s.actions.push_back({SlotAction::Kind::kStoreProp,
                             *slots_.find(key),
                             prop ? *prop : kInvalidProp});
      }
    }
  }

  // Fills a neighbor hop on stage `from_stage` for pattern edge `e`
  // (oriented by `reversed`), targeting stage id `to`.
  void fill_neighbor_hop(StagePlan& from_stage, const Op& op, StageId to) {
    HopPlan hop;
    hop.kind = HopKind::kNeighbor;
    hop.to = to;
    hop.dir = op.reversed ? reverse(op.edge->dir) : op.edge->dir;
    bool impossible = false;
    hop.elabels = resolve_elabels(op.edge->labels, &impossible);
    if (impossible) {
      // No edge can match: poison the hop with an always-false filter.
      hop.edge_filters.push_back(CompiledExpr::constant(bool_value(false)));
    }
    Env env;
    env.hop_edge_id = op.edge->id;
    for (const Expr* e : op.edge_conjuncts) {
      hop.edge_filters.push_back(compile(*e, env));
    }
    from_stage.hop = std::move(hop);
  }

  void emit_stages() {
    plan_.count_star = q_.count_star;

    // Stage 0: start vertex match (bootstrap stage).
    StagePlan& s0 = new_stage(StageKind::kNormal, "start(" + ops_[0].to + ")");
    fill_vertex_match(s0, ops_[0].to, 0);
    // Single-match start detection for heuristic (i) fast bootstrap.
    for (const Expr* e : ops_[0].conjuncts) {
      if (const auto lit = single_match_literal(*e, ops_[0].to)) {
        plan_.single_start = true;
        plan_.start_vertex = static_cast<VertexId>(*lit);
      }
    }
    StageId prev = s0.id;

    for (std::size_t i = 1; i < ops_.size(); ++i) {
      const Op& op = ops_[i];
      // Optional inspection hop to reposition the traversal.
      if (!op.inspect_var.empty()) {
        StagePlan& ins =
            new_stage(StageKind::kNormal, "inspect(" + op.inspect_var + ")");
        plan_.stages[prev].hop.kind = HopKind::kInspect;
        plan_.stages[prev].hop.target_slot =
            *slots_.find(vkey(op.inspect_var));
        plan_.stages[prev].hop.to = ins.id;
        prev = ins.id;
      }
      switch (op.kind) {
        case OpKind::kNeighbor: {
          StagePlan& match =
              new_stage(StageKind::kNormal, "match(" + op.to + ")");
          fill_vertex_match(match, op.to, i);
          // Materialized edge props are stored during the hop.
          fill_neighbor_hop(plan_.stages[prev], op, match.id);
          attach_eprop_stores(plan_.stages[prev].hop, op);
          prev = match.id;
          break;
        }
        case OpKind::kEdgeCheck: {
          StagePlan& after =
              new_stage(StageKind::kNormal,
                        "edge_check(" + op.from + "->" + op.to + ")");
          HopPlan hop;
          hop.kind = HopKind::kEdge;
          hop.to = after.id;
          hop.dir = op.reversed ? reverse(op.edge->dir) : op.edge->dir;
          bool impossible = false;
          hop.elabels = resolve_elabels(op.edge->labels, &impossible);
          if (impossible) {
            after.filters.push_back(CompiledExpr::constant(bool_value(false)));
          }
          hop.target_slot = *slots_.find(vkey(op.to));
          plan_.stages[prev].hop = std::move(hop);
          // Conjuncts placed at this op run on the stage after the check.
          Env env;
          env.current = "";  // current vertex is op.from, not a new match
          for (const Expr* e : op.conjuncts) {
            after.filters.push_back(compile(*e, env));
          }
          prev = after.id;
          break;
        }
        case OpKind::kRpq: {
          prev = emit_rpq(prev, i);
          break;
        }
        case OpKind::kStart:
          throw EngineError("start op after position 0");
      }
    }

    // Final stage: late macro conjuncts + output hop.
    StagePlan& last = plan_.stages[prev];
    for (const auto& [e, op] : final_macro_conjuncts_) {
      Env env;
      env.current = final_var_;
      env.rpq_op = op;
      env.internals = ops_[op].edge->macro != nullptr
                          ? &macro_vars_.at(ops_[op].edge->macro->name)
                          : &empty_set_;
      last.filters.push_back(compile(*e, env));
    }
    last.hop.kind = HopKind::kOutput;

    // Projections / aggregation.
    if (!q_.count_star) {
      Env env;
      env.current = final_var_;
      bool any_agg = false;
      for (const auto& item : q_.select) {
        if (item.agg != pgql::AggKind::kNone) any_agg = true;
      }
      if (!any_agg) {
        if (!q_.group_by.empty()) {
          throw QueryError("GROUP BY requires aggregate functions in SELECT");
        }
        for (const auto& item : q_.select) {
          plan_.projections.push_back(compile(*item.expr, env));
          plan_.column_names.push_back(item.alias);
        }
      } else {
        plan_.has_aggregates = true;
        for (const auto& item : q_.select) {
          plan_.column_names.push_back(item.alias);
          if (item.agg == pgql::AggKind::kNone) {
            plan_.select_layout.emplace_back(
                false, static_cast<unsigned>(plan_.group_exprs.size()));
            plan_.group_exprs.push_back(compile(*item.expr, env));
          } else {
            AggSpec spec;
            spec.kind = item.agg;
            if (item.expr != nullptr) {
              spec.has_operand = true;
              spec.operand = compile(*item.expr, env);
            } else if (item.agg != pgql::AggKind::kCount) {
              throw QueryError("only COUNT may omit its operand");
            }
            plan_.select_layout.emplace_back(
                true, static_cast<unsigned>(plan_.aggregates.size()));
            plan_.aggregates.push_back(std::move(spec));
          }
        }
        // Explicit GROUP BY: each key must textually match one of the
        // non-aggregate SELECT items (implicit grouping covers the rest).
        if (!q_.group_by.empty()) {
          std::vector<std::string> select_keys;
          for (const auto& item : q_.select) {
            if (item.agg == pgql::AggKind::kNone) {
              select_keys.push_back(pgql::to_text(*item.expr));
            }
          }
          for (const auto& key : q_.group_by) {
            const std::string text = pgql::to_text(*key);
            if (std::find(select_keys.begin(), select_keys.end(), text) ==
                select_keys.end()) {
              throw UnsupportedError(
                  "GROUP BY key " + text +
                  " must also appear as a plain SELECT item");
            }
          }
          if (q_.group_by.size() != select_keys.size()) {
            throw QueryError(
                "GROUP BY must list every non-aggregate SELECT item");
          }
        }
      }
    }
    plan_.num_slots = slots_.count();
  }

  void attach_eprop_stores(HopPlan& hop, const Op& op) {
    for (const auto& key : slots_.keys()) {
      const std::string prefix = "e:" + std::to_string(op.edge->id) + ".";
      if (key.rfind(prefix, 0) == 0) {
        const std::string prop_name = key.substr(prefix.size());
        const auto prop = cat_.find_property(prop_name);
        hop.eprop_stores.push_back(
            {*slots_.find(key), prop ? *prop : kInvalidProp});
      }
    }
  }

  StageId emit_rpq(StageId prev, std::size_t i) {
    const Op& op = ops_[i];
    const OrientedChain chain = oriented_chain(op);
    const auto& internals = op.edge->macro != nullptr
                                ? macro_vars_.at(op.edge->macro->name)
                                : empty_set_;

    StagePlan& control = new_stage(StageKind::kRpqControl,
                                   "rpq_control(" + op.to + ")");
    const StageId control_id = control.id;
    plan_.stages[prev].hop.kind = HopKind::kTransition;
    plan_.stages[prev].hop.to = control_id;

    RpqControlPlan rpq;
    rpq.min_hop = op.edge->quant.min;
    rpq.max_hop = op.edge->quant.max;
    rpq.index_id = plan_.num_rpq_indexes++;

    // Destination gating: labels + filters of the RPQ target var.
    {
      const VarInfo& info = vars_[var_index_.at(op.to)];
      bool impossible = info.impossible;
      rpq.dest_labels = resolve_vlabels(info.labels, &impossible);
      if (impossible) {
        rpq.dest_filters.push_back(CompiledExpr::constant(bool_value(false)));
      }
      Env env;
      env.current = op.to;
      for (const Expr* e : op.conjuncts) {
        rpq.dest_filters.push_back(compile(*e, env));
      }
      if (rpq_bound_dest_.count(i) != 0) {
        rpq.bound_dest_slot = *slots_.find(vkey(op.to));
      }
    }

    // Path stages: one per chain vertex; last one transitions back.
    std::vector<StageId> path_ids;
    for (std::size_t j = 0; j < chain.verts.size(); ++j) {
      StagePlan& p = new_stage(
          StageKind::kPath,
          "path[" + std::to_string(j) + "](" + chain.verts[j]->var + ")");
      p.rpq_group = control_id;
      path_ids.push_back(p.id);
    }
    for (std::size_t j = 0; j < chain.verts.size(); ++j) {
      StagePlan& p = plan_.stages[path_ids[j]];
      const VertexPattern& vp = *chain.verts[j];
      bool impossible = false;
      p.vlabels = resolve_vlabels(vp.labels, &impossible);
      if (impossible) {
        p.filters.push_back(CompiledExpr::constant(bool_value(false)));
      }
      // Per-iteration conjuncts anchored at this chain position.
      Env env;
      env.current = vp.var;
      env.rpq_op = i;
      env.internals = &internals;
      for (const Expr* e : op.iter_conjuncts) {
        const IterAnchor anchor =
            classify_iter(chain, *e, internals, macro_edge_set(op));
        if (anchor.hop < 0 && anchor.current == vp.var) {
          p.filters.push_back(compile(*e, env));
        }
      }
      // Macro slot materializations for this var.
      if (const auto slot = slots_.find(mvkey(i, vp.var))) {
        p.actions.push_back(
            {SlotAction::Kind::kStoreVertex, *slot, kInvalidProp});
      }
      for (const auto& key : slots_.keys()) {
        const std::string prefix = "mp:" + std::to_string(i) + ":" + vp.var + ".";
        if (key.rfind(prefix, 0) == 0) {
          const std::string prop_name = key.substr(prefix.size());
          const auto prop = cat_.find_property(prop_name);
          p.actions.push_back({SlotAction::Kind::kStoreProp,
                               *slots_.find(key),
                               prop ? *prop : kInvalidProp});
        }
      }
      // Hop to the next path stage / back to control.
      if (j + 1 < chain.verts.size()) {
        HopPlan hop;
        hop.kind = HopKind::kNeighbor;
        hop.to = path_ids[j + 1];
        hop.dir = chain.hops[j].dir;
        bool ielabel = false;
        hop.elabels =
            op.edge->macro != nullptr
                ? resolve_elabels(chain.hops[j].edge->labels, &ielabel)
                : resolve_elabels(op.edge->rpq_labels, &ielabel);
        if (ielabel) {
          hop.edge_filters.push_back(CompiledExpr::constant(bool_value(false)));
        }
        // Edge-variable path filters anchored to this hop (sender-side).
        for (const Expr* e : op.iter_conjuncts) {
          const IterAnchor anchor =
              classify_iter(chain, *e, internals, macro_edge_set(op));
          if (anchor.hop == static_cast<int>(j)) {
            Env henv;
            henv.current = vp.var;
            henv.rpq_op = i;
            henv.internals = &internals;
            henv.hop_macro_edge_var = chain.hops[j].edge->var;
            hop.edge_filters.push_back(compile(*e, henv));
          }
        }
        p.hop = std::move(hop);
      } else {
        p.hop.kind = HopKind::kTransition;
        p.hop.to = control_id;
        p.increments_depth = true;
      }
    }

    // Continuation stage: actions of the destination var; execution
    // arrives here on emission with current = destination vertex.
    StagePlan& cont =
        new_stage(StageKind::kNormal, "rpq_cont(" + op.to + ")");
    {
      const std::string v = op.to;
      if (const auto slot = slots_.find(vkey(v))) {
        cont.actions.push_back(
            {SlotAction::Kind::kStoreVertex, *slot, kInvalidProp});
      }
      for (const auto& key : slots_.keys()) {
        if (key.rfind("p:" + v + ".", 0) == 0) {
          const std::string prop_name = key.substr(key.find('.') + 1);
          const auto prop = cat_.find_property(prop_name);
          cont.actions.push_back({SlotAction::Kind::kStoreProp,
                                  *slots_.find(key),
                                  prop ? *prop : kInvalidProp});
        }
      }
    }

    rpq.path_entry = path_ids.front();
    rpq.first_path_stage = path_ids.front();
    rpq.last_path_stage = path_ids.back();
    rpq.continuation = cont.id;
    StagePlan& control_ref = plan_.stages[control_id];
    control_ref.rpq = std::move(rpq);
    control_ref.rpq_group = control_id;
    control_ref.hop.kind = HopKind::kTransition;
    control_ref.hop.to = cont.id;
    return cont.id;
  }

  void finalize() {
    plan_.explain = explain_plan(plan_);
  }

  const Query& q_;
  const Catalog& cat_;
  ExecPlan plan_;

  std::vector<VarInfo> vars_;
  std::unordered_map<std::string, std::size_t> var_index_;
  std::vector<CEdge> edges_;
  std::unordered_map<std::string, int> edge_vars_;  // edge var -> edge id
  std::unordered_map<std::string, const PathMacro*> macros_;
  std::unordered_map<std::string, std::unordered_set<std::string>> macro_vars_;
  std::unordered_map<std::string, std::unordered_set<std::string>>
      macro_edge_vars_;
  std::vector<Conjunct> conjuncts_;
  std::vector<Op> ops_;
  std::unordered_set<std::size_t> rpq_bound_dest_;  // op idx with bound dest
  std::vector<std::pair<const Expr*, std::size_t>> final_macro_conjuncts_;
  std::vector<std::pair<const Expr*, std::size_t>>
      materialized_edge_conjuncts_;
  SlotAllocator slots_;
  std::string final_var_;
  const std::unordered_set<std::string> empty_set_;
};

}  // namespace

ExecPlan plan_query(const Query& query, const Catalog& catalog) {
  return Planner(query, catalog).run();
}

}  // namespace rpqd
