#include "plan/expr.h"

#include <sstream>

#include "common/error.h"

namespace rpqd {

CompiledExpr& CompiledExpr::operator=(const CompiledExpr& other) {
  if (this == &other) return *this;
  kind_ = other.kind_;
  const_value_ = other.const_value_;
  text_ = other.text_;
  slot_ = other.slot_;
  prop_ = other.prop_;
  bin_op_ = other.bin_op_;
  un_op_ = other.un_op_;
  lhs_ = other.lhs_ ? std::make_unique<CompiledExpr>(*other.lhs_) : nullptr;
  rhs_ = other.rhs_ ? std::make_unique<CompiledExpr>(*other.rhs_) : nullptr;
  return *this;
}

CompiledExpr CompiledExpr::constant(Value v) {
  CompiledExpr e;
  e.kind_ = Kind::kConst;
  e.const_value_ = v;
  return e;
}

CompiledExpr CompiledExpr::constant_text(std::string text) {
  CompiledExpr e;
  e.kind_ = Kind::kConstText;
  e.text_ = std::move(text);
  return e;
}

CompiledExpr CompiledExpr::slot(SlotId s) {
  CompiledExpr e;
  e.kind_ = Kind::kSlot;
  e.slot_ = s;
  return e;
}

CompiledExpr CompiledExpr::current_prop(PropId p) {
  CompiledExpr e;
  e.kind_ = Kind::kCurrentProp;
  e.prop_ = p;
  return e;
}

CompiledExpr CompiledExpr::current_id() {
  CompiledExpr e;
  e.kind_ = Kind::kCurrentId;
  return e;
}

CompiledExpr CompiledExpr::current_label() {
  CompiledExpr e;
  e.kind_ = Kind::kCurrentLabel;
  return e;
}

CompiledExpr CompiledExpr::edge_prop(PropId p) {
  CompiledExpr e;
  e.kind_ = Kind::kEdgeProp;
  e.prop_ = p;
  return e;
}

CompiledExpr CompiledExpr::unary(pgql::UnOp op, CompiledExpr operand) {
  CompiledExpr e;
  e.kind_ = Kind::kUnary;
  e.un_op_ = op;
  e.lhs_ = std::make_unique<CompiledExpr>(std::move(operand));
  return e;
}

CompiledExpr CompiledExpr::binary(pgql::BinOp op, CompiledExpr lhs,
                                  CompiledExpr rhs) {
  CompiledExpr e;
  e.kind_ = Kind::kBinary;
  e.bin_op_ = op;
  e.lhs_ = std::make_unique<CompiledExpr>(std::move(lhs));
  e.rhs_ = std::make_unique<CompiledExpr>(std::move(rhs));
  return e;
}

bool CompiledExpr::reads_current() const {
  switch (kind_) {
    case Kind::kCurrentProp:
    case Kind::kCurrentId:
    case Kind::kCurrentLabel:
      return true;
    default:
      break;
  }
  if (lhs_ && lhs_->reads_current()) return true;
  if (rhs_ && rhs_->reads_current()) return true;
  return false;
}

bool CompiledExpr::reads_edge() const {
  if (kind_ == Kind::kEdgeProp) return true;
  if (lhs_ && lhs_->reads_edge()) return true;
  if (rhs_ && rhs_->reads_edge()) return true;
  return false;
}

bool CompiledExpr::reads_slot() const {
  if (kind_ == Kind::kSlot) return true;
  if (lhs_ && lhs_->reads_slot()) return true;
  if (rhs_ && rhs_->reads_slot()) return true;
  return false;
}

std::optional<int> compare_values(const EvalValue& a, const EvalValue& b,
                                  const Catalog& catalog) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  // Normalize text-backed strings against dictionary-encoded strings.
  if (a.text != nullptr || b.text != nullptr) {
    const auto string_of = [&](const EvalValue& x) -> const std::string* {
      if (x.text != nullptr) return x.text;
      if (x.v.type == ValueType::kString) {
        return &catalog.string_name(as_string_id(x.v));
      }
      return nullptr;
    };
    const std::string* sa = string_of(a);
    const std::string* sb = string_of(b);
    if (sa == nullptr || sb == nullptr) return std::nullopt;
    return *sa < *sb ? -1 : (*sa > *sb ? 1 : 0);
  }
  return catalog.compare(a.v, b.v);
}

namespace {

EvalValue arithmetic(pgql::BinOp op, const EvalValue& a, const EvalValue& b) {
  using pgql::BinOp;
  if (a.is_null() || b.is_null() || !is_numeric(a.v) || !is_numeric(b.v)) {
    return EvalValue::of(null_value());
  }
  const bool both_int =
      a.v.type == ValueType::kInt && b.v.type == ValueType::kInt;
  if (both_int) {
    const auto x = as_int(a.v);
    const auto y = as_int(b.v);
    switch (op) {
      case BinOp::kAdd: return EvalValue::of(int_value(x + y));
      case BinOp::kSub: return EvalValue::of(int_value(x - y));
      case BinOp::kMul: return EvalValue::of(int_value(x * y));
      case BinOp::kDiv:
        return y == 0 ? EvalValue::of(null_value())
                      : EvalValue::of(int_value(x / y));
      case BinOp::kMod:
        return y == 0 ? EvalValue::of(null_value())
                      : EvalValue::of(int_value(x % y));
      default: break;
    }
  }
  const double x = numeric_as_double(a.v);
  const double y = numeric_as_double(b.v);
  switch (op) {
    case BinOp::kAdd: return EvalValue::of(double_value(x + y));
    case BinOp::kSub: return EvalValue::of(double_value(x - y));
    case BinOp::kMul: return EvalValue::of(double_value(x * y));
    case BinOp::kDiv: return EvalValue::of(double_value(x / y));
    case BinOp::kMod: return EvalValue::of(null_value());
    default: break;
  }
  return EvalValue::of(null_value());
}

}  // namespace

EvalValue CompiledExpr::evaluate(const EvalCtx& ctx) const {
  using pgql::BinOp;
  using pgql::UnOp;
  switch (kind_) {
    case Kind::kConst:
      return EvalValue::of(const_value_);
    case Kind::kConstText:
      return EvalValue::of_text(text_);
    case Kind::kSlot:
      return EvalValue::of(ctx.slots[slot_]);
    case Kind::kCurrentProp:
      engine_check(ctx.current != kInvalidLocalVertex,
                   "current-vertex property read outside a vertex match");
      return EvalValue::of(ctx.part->property(ctx.current, prop_));
    case Kind::kCurrentId:
      engine_check(ctx.current != kInvalidLocalVertex,
                   "id(current) read outside a vertex match");
      return EvalValue::of(
          vertex_value(ctx.part->to_global(ctx.current)));
    case Kind::kCurrentLabel: {
      engine_check(ctx.current != kInvalidLocalVertex,
                   "label(current) read outside a vertex match");
      const LabelId label = ctx.part->label(ctx.current);
      return EvalValue::of_text(ctx.catalog->vertex_label_name(label));
    }
    case Kind::kEdgeProp:
      engine_check(ctx.adj != nullptr,
                   "edge property read outside an edge hop");
      return EvalValue::of(ctx.adj->edge_property(ctx.entry_idx, prop_));
    case Kind::kUnary: {
      const EvalValue operand = lhs_->evaluate(ctx);
      if (un_op_ == UnOp::kNot) {
        if (operand.is_null() || operand.v.type != ValueType::kBool) {
          return EvalValue::of(null_value());
        }
        return EvalValue::of(bool_value(!as_bool(operand.v)));
      }
      // Negation.
      if (operand.is_null() || !is_numeric(operand.v)) {
        return EvalValue::of(null_value());
      }
      if (operand.v.type == ValueType::kInt) {
        return EvalValue::of(int_value(-as_int(operand.v)));
      }
      return EvalValue::of(double_value(-as_double(operand.v)));
    }
    case Kind::kBinary: {
      switch (bin_op_) {
        case BinOp::kAnd: {
          // Short-circuit; null-propagating (three-valued AND collapses to
          // false for filtering purposes).
          const EvalValue a = lhs_->evaluate(ctx);
          if (!a.is_null() && a.v.type == ValueType::kBool && !as_bool(a.v)) {
            return EvalValue::of(bool_value(false));
          }
          const EvalValue b = rhs_->evaluate(ctx);
          if (a.is_null() || b.is_null()) return EvalValue::of(null_value());
          return EvalValue::of(bool_value(as_bool(a.v) && as_bool(b.v)));
        }
        case BinOp::kOr: {
          const EvalValue a = lhs_->evaluate(ctx);
          if (!a.is_null() && a.v.type == ValueType::kBool && as_bool(a.v)) {
            return EvalValue::of(bool_value(true));
          }
          const EvalValue b = rhs_->evaluate(ctx);
          if (a.is_null() || b.is_null()) return EvalValue::of(null_value());
          return EvalValue::of(bool_value(as_bool(a.v) || as_bool(b.v)));
        }
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
        case BinOp::kMod:
          return arithmetic(bin_op_, lhs_->evaluate(ctx), rhs_->evaluate(ctx));
        default: {
          const EvalValue a = lhs_->evaluate(ctx);
          const EvalValue b = rhs_->evaluate(ctx);
          const auto cmp = compare_values(a, b, *ctx.catalog);
          if (!cmp) return EvalValue::of(null_value());
          bool result = false;
          switch (bin_op_) {
            case BinOp::kEq: result = *cmp == 0; break;
            case BinOp::kNe: result = *cmp != 0; break;
            case BinOp::kLt: result = *cmp < 0; break;
            case BinOp::kLe: result = *cmp <= 0; break;
            case BinOp::kGt: result = *cmp > 0; break;
            case BinOp::kGe: result = *cmp >= 0; break;
            default: break;
          }
          return EvalValue::of(bool_value(result));
        }
      }
    }
  }
  return EvalValue::of(null_value());
}

bool CompiledExpr::evaluate_bool(const EvalCtx& ctx) const {
  const EvalValue result = evaluate(ctx);
  return !result.is_null() && result.v.type == ValueType::kBool &&
         as_bool(result.v);
}

std::string CompiledExpr::debug_text() const {
  // Canonical rendering: two expressions produce the same text iff they
  // are structurally identical (operator identity, constant payloads and
  // slot/prop ids included). The cross-query cache key hashes this text,
  // so under-rendering here would alias semantically distinct filters.
  std::ostringstream out;
  switch (kind_) {
    case Kind::kConst:
      out << "const<" << static_cast<int>(const_value_.type) << ':'
          << const_value_.bits << '>';
      break;
    case Kind::kConstText: out << '\'' << text_ << '\''; break;
    case Kind::kSlot: out << "slot[" << slot_ << ']'; break;
    case Kind::kCurrentProp: out << "cur.prop" << prop_; break;
    case Kind::kCurrentId: out << "id(cur)"; break;
    case Kind::kCurrentLabel: out << "label(cur)"; break;
    case Kind::kEdgeProp: out << "edge.prop" << prop_; break;
    case Kind::kUnary:
      out << "un" << static_cast<int>(un_op_) << '(' << lhs_->debug_text()
          << ')';
      break;
    case Kind::kBinary:
      out << '(' << lhs_->debug_text() << " op" << static_cast<int>(bin_op_)
          << ' ' << rhs_->debug_text() << ')';
      break;
  }
  return out.str();
}

}  // namespace rpqd
