// Cost-based query planner: PGQL AST -> distributed execution plan.
//
// Implements the paper's §3.1 pipeline. The logical operator choice uses
// the four published heuristics:
//   (i)   prefer single-match vertices (ID(v) = const) as starting points,
//   (ii)  prioritize heavily-filtered vertices in early stages,
//   (iii) prefer edge matches (O(log d) adjacency probes) over neighbor
//         expansion when both endpoints are already bound,
//   (iv)  prefer RPQ matches over plain neighbor matches, running RPQs as
//         early as possible because of their potential match explosion.
//
// The resulting plan is the stage/hop automaton of plan.h, with RPQ
// segments compiled into a control stage + path-stage ring and all
// filter/projection expressions compiled against the context-slot layout.
#pragma once

#include "graph/catalog.h"
#include "pgql/ast.h"
#include "plan/plan.h"

namespace rpqd {

/// Compiles a parsed query against a catalog. Throws QueryError for
/// semantic errors and UnsupportedError for constructs outside the subset.
ExecPlan plan_query(const pgql::Query& query, const Catalog& catalog);

}  // namespace rpqd
