// Distributed execution plan: the stage/hop automaton of Table 1.
//
// A plan is a sequence of stages. Each stage optionally matches the
// current vertex (labels + filters), materializes values into context
// slots (actions), and leaves through exactly one hop:
//
//   kNeighbor   follow edges of the current vertex        (neighbor hop)
//   kEdge       O(log) check of an edge to a bound vertex (edge hop)
//   kInspect    move execution to a bound vertex          (inspection hop)
//   kTransition change stage without moving               (transition hop)
//   kOutput     store projections / bump COUNT            (output hop)
//
// RPQ segments compile to a control stage (kind kRpqControl) plus a ring
// of path stages whose final hop transitions back to the control stage
// with a depth increment — exactly the automaton of Figure 1.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "plan/expr.h"

namespace rpqd {

enum class StageKind : std::uint8_t {
  kNormal,      // regular vertex-match stage
  kRpqControl,  // RPQ control stage (§3.2, red box of Figure 1)
  kPath,        // stage inside an RPQ path pattern
};

enum class HopKind : std::uint8_t {
  kNeighbor,
  kEdge,
  kInspect,
  kTransition,
  kOutput,
};

/// Materializes an edge property into a context slot while hopping, so a
/// later (possibly remote) stage can filter on it.
struct EpropStore {
  SlotId slot = kInvalidSlot;
  PropId prop = kInvalidProp;
};

struct HopPlan {
  HopKind kind = HopKind::kOutput;
  StageId to = kInvalidStage;
  // kNeighbor / kEdge:
  Direction dir = Direction::kOut;
  std::vector<LabelId> elabels;  // alternation; empty = any label
  /// Sender-side per-edge filters (edge-variable predicates). They may
  /// read the edge's properties and context slots, never the destination.
  std::vector<CompiledExpr> edge_filters;
  /// Sender-side edge-property materializations.
  std::vector<EpropStore> eprop_stores;
  // kEdge / kInspect: slot holding the bound target vertex.
  SlotId target_slot = kInvalidSlot;
};

struct SlotAction {
  enum class Kind : std::uint8_t { kStoreVertex, kStoreProp };
  Kind kind = Kind::kStoreVertex;
  SlotId slot = kInvalidSlot;
  PropId prop = kInvalidProp;  // kStoreProp only
};

/// RPQ control-stage parameters (§3.2–§3.5).
struct RpqControlPlan {
  Depth min_hop = 0;
  Depth max_hop = kUnboundedDepth;
  StageId path_entry = kInvalidStage;    // first path stage
  StageId continuation = kInvalidStage;  // stage entered on emission
  /// Destination vertex match, gating emission only (exploration
  /// continues regardless).
  std::vector<LabelId> dest_labels;
  std::vector<CompiledExpr> dest_filters;
  /// When the RPQ's destination variable was already bound (cycle-closing
  /// RPQ), emission additionally requires current == slots[bound_dest].
  SlotId bound_dest_slot = kInvalidSlot;
  /// Which reachability-index instance this control stage uses.
  unsigned index_id = 0;
  StageId first_path_stage = kInvalidStage;
  StageId last_path_stage = kInvalidStage;
};

struct StagePlan {
  StageId id = kInvalidStage;
  StageKind kind = StageKind::kNormal;
  /// Vertex match: label alternation (empty = any) + filters.
  std::vector<LabelId> vlabels;
  std::vector<CompiledExpr> filters;
  std::vector<SlotAction> actions;
  HopPlan hop;
  /// Set on the transition hop returning from the last path stage to the
  /// control stage: entering the control stage bumps the RPQ depth.
  bool increments_depth = false;
  /// kRpqControl only.
  RpqControlPlan rpq;
  /// For kPath / kRpqControl stages: the owning control stage;
  /// kInvalidStage for normal stages.
  StageId rpq_group = kInvalidStage;
  /// Human-readable note for EXPLAIN output.
  std::string note;
};

/// One aggregate function of a GROUP BY plan.
struct AggSpec {
  pgql::AggKind kind = pgql::AggKind::kNone;
  bool has_operand = false;  // false: COUNT(*)
  CompiledExpr operand;
};

struct ExecPlan {
  std::vector<StagePlan> stages;
  unsigned num_slots = 0;
  unsigned num_rpq_indexes = 0;  // reachability-index instances needed

  bool count_star = false;
  std::vector<CompiledExpr> projections;  // evaluated at the output hop
  std::vector<std::string> column_names;

  // Aggregation (GROUP BY): group keys + aggregate functions; the
  // select_layout maps each output column to (is_aggregate, index).
  bool has_aggregates = false;
  std::vector<CompiledExpr> group_exprs;
  std::vector<AggSpec> aggregates;
  std::vector<std::pair<bool, unsigned>> select_layout;

  /// True when stage 0 carries an `ID(v) = const` single-match filter, so
  /// bootstrapping can skip the scan (planner heuristic i).
  bool single_start = false;
  VertexId start_vertex = kInvalidVertex;

  std::string explain;  // rendered plan, for logging and tests

  const StagePlan& stage(StageId id) const { return stages[id]; }
  StageId num_stages() const { return static_cast<StageId>(stages.size()); }
};

/// Renders a plan in a compact EXPLAIN-like format.
std::string explain_plan(const ExecPlan& plan);

}  // namespace rpqd
