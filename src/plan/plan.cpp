#include "plan/plan.h"

#include <sstream>

namespace rpqd {

namespace {

const char* hop_name(HopKind k) {
  switch (k) {
    case HopKind::kNeighbor: return "neighbor";
    case HopKind::kEdge: return "edge";
    case HopKind::kInspect: return "inspect";
    case HopKind::kTransition: return "transition";
    case HopKind::kOutput: return "output";
  }
  return "?";
}

const char* stage_name(StageKind k) {
  switch (k) {
    case StageKind::kNormal: return "stage";
    case StageKind::kRpqControl: return "rpq-control";
    case StageKind::kPath: return "path";
  }
  return "?";
}

const char* dir_name(Direction d) {
  switch (d) {
    case Direction::kOut: return "out";
    case Direction::kIn: return "in";
    case Direction::kBoth: return "both";
  }
  return "?";
}

}  // namespace

std::string explain_plan(const ExecPlan& plan) {
  std::ostringstream out;
  out << "plan: " << plan.stages.size() << " stages, " << plan.num_slots
      << " slots, " << plan.num_rpq_indexes << " rpq index(es)\n";
  for (const auto& s : plan.stages) {
    out << "  S" << s.id << " [" << stage_name(s.kind) << "] " << s.note;
    if (!s.vlabels.empty()) {
      out << " labels(";
      for (std::size_t i = 0; i < s.vlabels.size(); ++i) {
        out << (i > 0 ? "|" : "") << s.vlabels[i];
      }
      out << ')';
    }
    if (!s.filters.empty()) out << " filters=" << s.filters.size();
    if (!s.actions.empty()) out << " actions=" << s.actions.size();
    if (s.kind == StageKind::kRpqControl) {
      out << " min=" << s.rpq.min_hop << " max=";
      if (s.rpq.max_hop == kUnboundedDepth) {
        out << "inf";
      } else {
        out << s.rpq.max_hop;
      }
      out << " path_entry=S" << s.rpq.path_entry << " cont=S"
          << s.rpq.continuation;
    }
    out << " -> " << hop_name(s.hop.kind);
    if (s.hop.kind == HopKind::kNeighbor || s.hop.kind == HopKind::kEdge) {
      out << '(' << dir_name(s.hop.dir) << ')';
    }
    if (s.hop.to != kInvalidStage) out << " S" << s.hop.to;
    if (s.increments_depth) out << " (depth++)";
    out << '\n';
  }
  if (plan.count_star) {
    out << "  output: COUNT(*)\n";
  } else {
    out << "  output:";
    for (const auto& name : plan.column_names) out << ' ' << name;
    out << '\n';
  }
  return out.str();
}

}  // namespace rpqd
