// Compact binary snapshot format for property graphs — faster to load
// than CSV for benchmark reruns, and a second (independent) lossless
// serialization path exercising the wire codecs.
//
// Layout (little-endian):
//   magic "RPQDGRPH", u32 version,
//   catalog: vertex labels, edge labels, properties(+types), strings,
//   vertices: count, label ids, per-property sparse columns,
//   edges: count, (src, dst, label) triples, per-property sparse columns.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace rpqd::io {

void save_binary(const Graph& graph, std::ostream& out);
Graph load_binary(std::istream& in);

void save_binary_file(const Graph& graph, const std::string& path);
Graph load_binary_file(const std::string& path);

}  // namespace rpqd::io
