#include "io/csv.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace rpqd::io {

namespace {

[[noreturn]] void fail(const char* file, std::size_t line,
                       const std::string& what) {
  throw QueryError(std::string("csv ") + file + " line " +
                   std::to_string(line) + ": " + what);
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string field;
  for (const char c : line) {
    if (c == sep) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

std::int64_t parse_int(const std::string& s, const char* file,
                       std::size_t line) {
  std::int64_t value = 0;
  const auto r = std::from_chars(s.data(), s.data() + s.size(), value);
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size()) {
    fail(file, line, "expected integer, got '" + s + "'");
  }
  return value;
}

// Parses one `key:type=value` cell and applies it via `apply`.
template <typename ApplyFn>
void parse_property(const std::string& cell, const char* file,
                    std::size_t line, Catalog& catalog, ApplyFn apply) {
  const auto colon = cell.find(':');
  const auto eq = cell.find('=', colon == std::string::npos ? 0 : colon);
  if (colon == std::string::npos || eq == std::string::npos || colon > eq) {
    fail(file, line, "expected key:type=value, got '" + cell + "'");
  }
  const std::string key = cell.substr(0, colon);
  const std::string type = cell.substr(colon + 1, eq - colon - 1);
  const std::string text = cell.substr(eq + 1);
  if (type == "int") {
    apply(catalog.property(key, ValueType::kInt),
          int_value(parse_int(text, file, line)));
  } else if (type == "double") {
    apply(catalog.property(key, ValueType::kDouble),
          double_value(std::stod(text)));
  } else if (type == "bool") {
    if (text != "true" && text != "false") {
      fail(file, line, "expected true/false, got '" + text + "'");
    }
    apply(catalog.property(key, ValueType::kBool), bool_value(text == "true"));
  } else if (type == "string") {
    apply(catalog.property(key, ValueType::kString),
          string_value(catalog.string_id(text)));
  } else {
    fail(file, line, "unknown property type '" + type + "'");
  }
}

}  // namespace

Graph load_csv(std::istream& vertices, std::istream& edges,
               const CsvOptions& options) {
  GraphBuilder b;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(vertices, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, options.separator);
    if (fields.size() < 2) {
      fail("vertices", line_no, "expected at least id|label");
    }
    const auto id = parse_int(fields[0], "vertices", line_no);
    if (id < 0 || static_cast<std::uint64_t>(id) != b.num_vertices()) {
      fail("vertices", line_no,
           "vertex ids must be dense and ascending from 0 (got " +
               fields[0] + ", expected " + std::to_string(b.num_vertices()) +
               ")");
    }
    const VertexId v = b.add_vertex(fields[1]);
    for (std::size_t f = 2; f < fields.size(); ++f) {
      if (fields[f].empty()) continue;
      parse_property(fields[f], "vertices", line_no, b.catalog(),
                     [&](PropId p, Value value) { b.set_property(v, p, value); });
    }
  }

  line_no = 0;
  while (std::getline(edges, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, options.separator);
    if (fields.size() < 3) {
      fail("edges", line_no, "expected at least src|dst|label");
    }
    const auto src = parse_int(fields[0], "edges", line_no);
    const auto dst = parse_int(fields[1], "edges", line_no);
    if (src < 0 || dst < 0 ||
        static_cast<std::uint64_t>(src) >= b.num_vertices() ||
        static_cast<std::uint64_t>(dst) >= b.num_vertices()) {
      fail("edges", line_no, "edge endpoint out of range");
    }
    const EdgeId e = b.add_edge(static_cast<VertexId>(src),
                                static_cast<VertexId>(dst), fields[2]);
    for (std::size_t f = 3; f < fields.size(); ++f) {
      if (fields[f].empty()) continue;
      parse_property(fields[f], "edges", line_no, b.catalog(),
                     [&](PropId p, Value value) {
                       b.set_edge_property(e, p, value);
                     });
    }
  }
  return std::move(b).build();
}

Graph load_csv_files(const std::string& vertices_path,
                     const std::string& edges_path,
                     const CsvOptions& options) {
  std::ifstream vertices(vertices_path);
  if (!vertices) throw QueryError("cannot open " + vertices_path);
  std::ifstream edges(edges_path);
  if (!edges) throw QueryError("cannot open " + edges_path);
  return load_csv(vertices, edges, options);
}

namespace {

void write_value(std::ostream& out, const Catalog& cat, PropId prop,
                 const Value& v, char sep) {
  out << sep << cat.property_name(prop) << ':';
  switch (v.type) {
    case ValueType::kInt: out << "int=" << as_int(v); break;
    case ValueType::kDouble: out << "double=" << as_double(v); break;
    case ValueType::kBool:
      out << "bool=" << (as_bool(v) ? "true" : "false");
      break;
    case ValueType::kString:
      out << "string=" << cat.string_name(as_string_id(v));
      break;
    default:
      throw EngineError("csv: unsupported property value type");
  }
}

}  // namespace

void save_csv(const Graph& graph, std::ostream& vertices, std::ostream& edges,
              const CsvOptions& options) {
  const Catalog& cat = graph.catalog();
  const char sep = options.separator;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    vertices << v << sep << cat.vertex_label_name(graph.label(v));
    for (PropId p = 0; p < cat.num_properties(); ++p) {
      const Value value = graph.property(v, p);
      if (!is_null(value)) write_value(vertices, cat, p, value, sep);
    }
    vertices << '\n';
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto [begin, end] = graph.out().range(v);
    for (std::size_t i = begin; i < end; ++i) {
      const AdjEntry& e = graph.out().entry(i);
      edges << v << sep << e.other << sep << cat.edge_label_name(e.elabel);
      for (PropId p = 0; p < cat.num_properties(); ++p) {
        const Value value = graph.out().edge_property(i, p);
        if (!is_null(value)) write_value(edges, cat, p, value, sep);
      }
      edges << '\n';
    }
  }
}

void save_csv_files(const Graph& graph, const std::string& vertices_path,
                    const std::string& edges_path, const CsvOptions& options) {
  std::ofstream vertices(vertices_path);
  if (!vertices) throw QueryError("cannot open " + vertices_path);
  std::ofstream edges(edges_path);
  if (!edges) throw QueryError("cannot open " + edges_path);
  save_csv(graph, vertices, edges, options);
}

}  // namespace rpqd::io
