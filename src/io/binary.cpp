#include "io/binary.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/serialize.h"

namespace rpqd::io {

namespace {

constexpr char kMagic[8] = {'R', 'P', 'Q', 'D', 'G', 'R', 'P', 'H'};
constexpr std::uint32_t kVersion = 1;

void put_string(BinaryWriter& w, const std::string& s) { w.write_string(s); }

// Serializes one sparse property column over `count` items via `get`.
template <typename GetFn>
void put_column(BinaryWriter& w, std::uint64_t count, GetFn get) {
  std::uint64_t present = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!is_null(get(i))) ++present;
  }
  w.write_varint(present);
  for (std::uint64_t i = 0; i < count; ++i) {
    const Value v = get(i);
    if (is_null(v)) continue;
    w.write_varint(i);
    w.write<std::uint8_t>(static_cast<std::uint8_t>(v.type));
    w.write<std::uint64_t>(v.bits);
  }
}

}  // namespace

void save_binary(const Graph& graph, std::ostream& out) {
  std::vector<std::byte> buf;
  BinaryWriter w(buf);
  const Catalog& cat = graph.catalog();

  w.write_varint(cat.num_vertex_labels());
  for (std::size_t i = 0; i < cat.num_vertex_labels(); ++i) {
    put_string(w, cat.vertex_label_name(static_cast<LabelId>(i)));
  }
  w.write_varint(cat.num_edge_labels());
  for (std::size_t i = 0; i < cat.num_edge_labels(); ++i) {
    put_string(w, cat.edge_label_name(static_cast<LabelId>(i)));
  }
  w.write_varint(cat.num_properties());
  for (std::size_t i = 0; i < cat.num_properties(); ++i) {
    put_string(w, cat.property_name(static_cast<PropId>(i)));
    w.write<std::uint8_t>(
        static_cast<std::uint8_t>(cat.property_type(static_cast<PropId>(i))));
  }
  // Strings referenced by property values.
  std::uint32_t num_strings = 0;
  {
    // The dictionary is append-only; find its size by probing render of
    // string ids is wasteful — walk values instead.
    std::uint32_t max_id = 0;
    bool any = false;
    const auto note = [&](const Value& v) {
      if (v.type == ValueType::kString) {
        any = true;
        max_id = std::max(max_id, as_string_id(v));
      }
    };
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (PropId p = 0; p < cat.num_properties(); ++p) {
        note(graph.property(v, p));
      }
    }
    for (std::size_t i = 0; i < graph.out().num_entries(); ++i) {
      for (PropId p = 0; p < cat.num_properties(); ++p) {
        note(graph.out().edge_property(i, p));
      }
    }
    num_strings = any ? max_id + 1 : 0;
  }
  w.write_varint(num_strings);
  for (std::uint32_t i = 0; i < num_strings; ++i) {
    put_string(w, cat.string_name(i));
  }

  // Vertices.
  w.write_varint(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    w.write<std::uint16_t>(graph.label(v));
  }
  for (PropId p = 0; p < cat.num_properties(); ++p) {
    put_column(w, graph.num_vertices(),
               [&](std::uint64_t v) { return graph.property(v, p); });
  }

  // Edges, in out-CSR order (each edge exactly once).
  w.write_varint(graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto [begin, end] = graph.out().range(v);
    for (std::size_t i = begin; i < end; ++i) {
      const AdjEntry& e = graph.out().entry(i);
      w.write_varint(v);
      w.write_varint(e.other);
      w.write<std::uint16_t>(e.elabel);
    }
  }
  for (PropId p = 0; p < cat.num_properties(); ++p) {
    // Column indexed by position in the out-CSR entry order.
    put_column(w, graph.out().num_entries(), [&](std::uint64_t i) {
      return graph.out().edge_property(i, p);
    });
  }

  out.write(kMagic, sizeof(kMagic));
  std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t size = buf.size();
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
}

Graph load_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw QueryError("binary graph: bad magic");
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (version != kVersion) {
    throw QueryError("binary graph: unsupported version " +
                     std::to_string(version));
  }
  std::uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in) throw QueryError("binary graph: truncated header");
  std::vector<std::byte> buf(size);
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw QueryError("binary graph: truncated payload");

  BinaryReader r(buf);
  GraphBuilder b;
  Catalog& cat = b.catalog();
  const auto nvl = r.read_varint();
  for (std::uint64_t i = 0; i < nvl; ++i) cat.vertex_label(r.read_string());
  const auto nel = r.read_varint();
  for (std::uint64_t i = 0; i < nel; ++i) cat.edge_label(r.read_string());
  const auto nprops = r.read_varint();
  for (std::uint64_t i = 0; i < nprops; ++i) {
    const std::string name = r.read_string();
    const auto type = static_cast<ValueType>(r.read<std::uint8_t>());
    cat.property(name, type);
  }
  const auto nstrings = r.read_varint();
  for (std::uint64_t i = 0; i < nstrings; ++i) cat.string_id(r.read_string());

  const auto nvertices = r.read_varint();
  for (std::uint64_t v = 0; v < nvertices; ++v) {
    b.add_vertex(r.read<std::uint16_t>());
  }
  for (PropId p = 0; p < nprops; ++p) {
    const auto present = r.read_varint();
    for (std::uint64_t i = 0; i < present; ++i) {
      const auto v = r.read_varint();
      Value value;
      value.type = static_cast<ValueType>(r.read<std::uint8_t>());
      value.bits = r.read<std::uint64_t>();
      b.set_property(v, p, value);
    }
  }

  const auto nedges = r.read_varint();
  for (std::uint64_t e = 0; e < nedges; ++e) {
    const auto src = r.read_varint();
    const auto dst = r.read_varint();
    b.add_edge(src, dst, r.read<std::uint16_t>());
  }
  for (PropId p = 0; p < nprops; ++p) {
    const auto present = r.read_varint();
    for (std::uint64_t i = 0; i < present; ++i) {
      const auto e = r.read_varint();
      Value value;
      value.type = static_cast<ValueType>(r.read<std::uint8_t>());
      value.bits = r.read<std::uint64_t>();
      b.set_edge_property(e, p, value);
    }
  }
  engine_check(r.done(), "binary graph: trailing bytes");
  return std::move(b).build();
}

void save_binary_file(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw QueryError("cannot open " + path);
  save_binary(graph, out);
}

Graph load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw QueryError("cannot open " + path);
  return load_binary(in);
}

}  // namespace rpqd::io
