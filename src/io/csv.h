// CSV import/export for property graphs.
//
// Format (LDBC-style, pipe-separated by default):
//
//   vertices file:  id|label|prop:type|prop:type|...
//                   0|Person|name:string=alice|age:int=34
//   (header row declares nothing; every row carries `key:type=value`
//   pairs after the label, so sparse properties need no schema up front)
//
//   edges file:     src|dst|label|prop:type=value|...
//                   0|1|knows|since:int=2012
//
// Types: int, double, string, bool. Vertex ids must be dense 0..n-1
// (the in-memory graph uses dense ids; a loader-level remapping would
// hide bugs rather than help).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace rpqd::io {

struct CsvOptions {
  char separator = '|';
};

/// Parses a vertices stream + an edges stream into a graph.
/// Throws QueryError with a line number on malformed input.
Graph load_csv(std::istream& vertices, std::istream& edges,
               const CsvOptions& options = {});

/// Convenience: load from files.
Graph load_csv_files(const std::string& vertices_path,
                     const std::string& edges_path,
                     const CsvOptions& options = {});

/// Writes a graph back out in the same format (lossless round-trip).
void save_csv(const Graph& graph, std::ostream& vertices,
              std::ostream& edges, const CsvOptions& options = {});

void save_csv_files(const Graph& graph, const std::string& vertices_path,
                    const std::string& edges_path,
                    const CsvOptions& options = {});

}  // namespace rpqd::io
