#include "workloads/queries.h"

#include <sstream>

namespace rpqd::workloads {

std::vector<WorkloadQuery> benchmark_queries() {
  std::vector<WorkloadQuery> queries;
  // Q3: forums moderated by persons in Burma; all messages in the reply
  // trees of their posts. Narrow single-vertex start (country filter).
  queries.push_back(
      {"Q03*",
       "SELECT COUNT(*) FROM MATCH (country:Country) <-[:isPartOf]- "
       "(city:City) <-[:isLocatedIn]- (p:Person) <-[:hasModerator]- "
       "(f:Forum) -[:containerOf]-> (post:Post) <-/:replyOf*/- (msg) "
       "WHERE country.name = 'Burma'",
       true});
  // Q3 adaptation: the same reachability part without the narrow country
  // start (wide exploration over every forum).
  queries.push_back(
      {"Q03a",
       "SELECT COUNT(*) FROM MATCH (f:Forum) -[:containerOf]-> (post:Post) "
       "<-/:replyOf*/- (msg)",
       false});
  // Q9: recursively all replies to posts in a creation-date window.
  queries.push_back(
      {"Q09*",
       "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf+/- (c:Comment) "
       "WHERE post.creationDate >= 400 AND post.creationDate <= 2900",
       true});
  // Q9 adaptation: 0-hop variant over all messages.
  queries.push_back(
      {"Q09a",
       "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf*/- (m)",
       false});
  // Q9 adaptation: bounded reply depth.
  queries.push_back(
      {"Q09b",
       "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf{1,3}/- "
       "(c:Comment)",
       false});
  // Q10: persons within two or three Knows hops of one person; the
  // reachability index is heavily exercised (Table 3).
  queries.push_back(
      {"Q10*",
       "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{2,3}/- (p2:Person) "
       "WHERE p1.id = 7",
       true});
  // Q10 adaptation: shallower neighbourhood, different start.
  queries.push_back(
      {"Q10a",
       "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{1,2}/- (p2:Person) "
       "WHERE p1.id = 23",
       false});
  // Q10 adaptation: unbounded directed Knows reachability (exercises the
  // §3.4 max-depth consensus). Directed, because an undirected unbounded
  // single-source walk on a dense component is the DFT worst case the
  // paper's §5 explicitly cedes to BFT engines.
  queries.push_back(
      {"Q10b",
       "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows+/-> (p2:Person) "
       "WHERE p1.id = 42",
       false});
  // The intro's cross-filter query: ascending-age chains of Knows.
  queries.push_back({"QXfil", cross_filter_query(), false});
  return queries;
}

std::string reply_depth_query(Depth min_hop, Depth max_hop) {
  std::ostringstream out;
  out << "SELECT COUNT(*) FROM MATCH (m:Post|Comment) -/:replyOf{" << min_hop;
  if (max_hop == kUnboundedDepth) {
    out << ",";
  } else {
    out << "," << max_hop;
  }
  out << "}/-> (n)";
  return out.str();
}

std::string cross_filter_query() {
  return "PATH p AS (pa:Person) -[:knows]- (pb:Person) "
         "WHERE pa.age <= pb.age "
         "SELECT COUNT(*) FROM MATCH (p1:Person) -/:p*/-> (p2:Person) "
         "WHERE p1.id = 11 AND p1.age <= p2.age";
}

}  // namespace rpqd::workloads
