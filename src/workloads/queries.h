// The benchmark workload: nine LDBC-BI-derived reachability queries
// (§4.1 — three original-style queries Q3/Q9/Q10 plus six adaptations)
// and the artificial Reply-depth queries of Figure 3.
//
// The queries are expressed against the synthetic LDBC-like schema of
// ldbc/schema.h. As in the paper, the adaptations strip constructs the
// engine does not support (correlated subqueries, ORDER BY) and keep the
// reachability-matching part.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace rpqd::workloads {

struct WorkloadQuery {
  std::string id;     // "Q03*", "Q09a", ...
  std::string pgql;
  bool original;      // true for the three original-style BI queries
};

/// The nine benchmark queries (Figure 2's x-axis).
std::vector<WorkloadQuery> benchmark_queries();

/// The Figure 3 artificial query: a Reply RPQ with explicit min/max
/// exploration depth over all messages.
std::string reply_depth_query(Depth min_hop, Depth max_hop);

/// The intro's cross-filter example: ascending-age Knows chains.
std::string cross_filter_query();

}  // namespace rpqd::workloads
