file(REMOVE_RECURSE
  "CMakeFiles/rpqd_pgql.dir/ast.cpp.o"
  "CMakeFiles/rpqd_pgql.dir/ast.cpp.o.d"
  "CMakeFiles/rpqd_pgql.dir/lexer.cpp.o"
  "CMakeFiles/rpqd_pgql.dir/lexer.cpp.o.d"
  "CMakeFiles/rpqd_pgql.dir/parser.cpp.o"
  "CMakeFiles/rpqd_pgql.dir/parser.cpp.o.d"
  "librpqd_pgql.a"
  "librpqd_pgql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_pgql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
