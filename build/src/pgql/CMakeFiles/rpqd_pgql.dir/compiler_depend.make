# Empty compiler generated dependencies file for rpqd_pgql.
# This may be replaced when dependencies are built.
