file(REMOVE_RECURSE
  "librpqd_pgql.a"
)
