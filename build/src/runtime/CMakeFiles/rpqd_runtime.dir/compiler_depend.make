# Empty compiler generated dependencies file for rpqd_runtime.
# This may be replaced when dependencies are built.
