file(REMOVE_RECURSE
  "librpqd_runtime.a"
)
