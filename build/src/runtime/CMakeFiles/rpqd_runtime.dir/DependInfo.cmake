
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/aggregate.cpp" "src/runtime/CMakeFiles/rpqd_runtime.dir/aggregate.cpp.o" "gcc" "src/runtime/CMakeFiles/rpqd_runtime.dir/aggregate.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/runtime/CMakeFiles/rpqd_runtime.dir/engine.cpp.o" "gcc" "src/runtime/CMakeFiles/rpqd_runtime.dir/engine.cpp.o.d"
  "/root/repo/src/runtime/machine.cpp" "src/runtime/CMakeFiles/rpqd_runtime.dir/machine.cpp.o" "gcc" "src/runtime/CMakeFiles/rpqd_runtime.dir/machine.cpp.o.d"
  "/root/repo/src/runtime/stats.cpp" "src/runtime/CMakeFiles/rpqd_runtime.dir/stats.cpp.o" "gcc" "src/runtime/CMakeFiles/rpqd_runtime.dir/stats.cpp.o.d"
  "/root/repo/src/runtime/termination.cpp" "src/runtime/CMakeFiles/rpqd_runtime.dir/termination.cpp.o" "gcc" "src/runtime/CMakeFiles/rpqd_runtime.dir/termination.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/rpqd_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpqd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rpq/CMakeFiles/rpqd_rpq.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rpqd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pgql/CMakeFiles/rpqd_pgql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rpqd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
