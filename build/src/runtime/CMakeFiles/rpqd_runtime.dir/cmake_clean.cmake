file(REMOVE_RECURSE
  "CMakeFiles/rpqd_runtime.dir/aggregate.cpp.o"
  "CMakeFiles/rpqd_runtime.dir/aggregate.cpp.o.d"
  "CMakeFiles/rpqd_runtime.dir/engine.cpp.o"
  "CMakeFiles/rpqd_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/rpqd_runtime.dir/machine.cpp.o"
  "CMakeFiles/rpqd_runtime.dir/machine.cpp.o.d"
  "CMakeFiles/rpqd_runtime.dir/stats.cpp.o"
  "CMakeFiles/rpqd_runtime.dir/stats.cpp.o.d"
  "CMakeFiles/rpqd_runtime.dir/termination.cpp.o"
  "CMakeFiles/rpqd_runtime.dir/termination.cpp.o.d"
  "librpqd_runtime.a"
  "librpqd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
