# Empty dependencies file for rpqd_api.
# This may be replaced when dependencies are built.
