file(REMOVE_RECURSE
  "CMakeFiles/rpqd_api.dir/reach_graph.cpp.o"
  "CMakeFiles/rpqd_api.dir/reach_graph.cpp.o.d"
  "CMakeFiles/rpqd_api.dir/rpqd.cpp.o"
  "CMakeFiles/rpqd_api.dir/rpqd.cpp.o.d"
  "librpqd_api.a"
  "librpqd_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
