file(REMOVE_RECURSE
  "librpqd_api.a"
)
