file(REMOVE_RECURSE
  "CMakeFiles/rpqd_graph.dir/catalog.cpp.o"
  "CMakeFiles/rpqd_graph.dir/catalog.cpp.o.d"
  "CMakeFiles/rpqd_graph.dir/graph.cpp.o"
  "CMakeFiles/rpqd_graph.dir/graph.cpp.o.d"
  "CMakeFiles/rpqd_graph.dir/partition.cpp.o"
  "CMakeFiles/rpqd_graph.dir/partition.cpp.o.d"
  "librpqd_graph.a"
  "librpqd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
