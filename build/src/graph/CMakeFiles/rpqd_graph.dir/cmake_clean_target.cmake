file(REMOVE_RECURSE
  "librpqd_graph.a"
)
