# Empty dependencies file for rpqd_graph.
# This may be replaced when dependencies are built.
