# Empty compiler generated dependencies file for rpqd_workloads.
# This may be replaced when dependencies are built.
