file(REMOVE_RECURSE
  "librpqd_workloads.a"
)
