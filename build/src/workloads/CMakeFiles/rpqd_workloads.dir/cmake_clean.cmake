file(REMOVE_RECURSE
  "CMakeFiles/rpqd_workloads.dir/queries.cpp.o"
  "CMakeFiles/rpqd_workloads.dir/queries.cpp.o.d"
  "librpqd_workloads.a"
  "librpqd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
