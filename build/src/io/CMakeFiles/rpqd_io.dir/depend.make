# Empty dependencies file for rpqd_io.
# This may be replaced when dependencies are built.
