file(REMOVE_RECURSE
  "CMakeFiles/rpqd_io.dir/binary.cpp.o"
  "CMakeFiles/rpqd_io.dir/binary.cpp.o.d"
  "CMakeFiles/rpqd_io.dir/csv.cpp.o"
  "CMakeFiles/rpqd_io.dir/csv.cpp.o.d"
  "librpqd_io.a"
  "librpqd_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
