file(REMOVE_RECURSE
  "librpqd_io.a"
)
