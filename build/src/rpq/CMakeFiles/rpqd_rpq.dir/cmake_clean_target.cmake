file(REMOVE_RECURSE
  "librpqd_rpq.a"
)
