file(REMOVE_RECURSE
  "CMakeFiles/rpqd_rpq.dir/reach_index.cpp.o"
  "CMakeFiles/rpqd_rpq.dir/reach_index.cpp.o.d"
  "librpqd_rpq.a"
  "librpqd_rpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_rpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
