# Empty dependencies file for rpqd_rpq.
# This may be replaced when dependencies are built.
