file(REMOVE_RECURSE
  "librpqd_plan.a"
)
