# Empty dependencies file for rpqd_plan.
# This may be replaced when dependencies are built.
