file(REMOVE_RECURSE
  "CMakeFiles/rpqd_plan.dir/expr.cpp.o"
  "CMakeFiles/rpqd_plan.dir/expr.cpp.o.d"
  "CMakeFiles/rpqd_plan.dir/plan.cpp.o"
  "CMakeFiles/rpqd_plan.dir/plan.cpp.o.d"
  "CMakeFiles/rpqd_plan.dir/planner.cpp.o"
  "CMakeFiles/rpqd_plan.dir/planner.cpp.o.d"
  "librpqd_plan.a"
  "librpqd_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
