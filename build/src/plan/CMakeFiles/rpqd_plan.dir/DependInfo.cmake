
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/expr.cpp" "src/plan/CMakeFiles/rpqd_plan.dir/expr.cpp.o" "gcc" "src/plan/CMakeFiles/rpqd_plan.dir/expr.cpp.o.d"
  "/root/repo/src/plan/plan.cpp" "src/plan/CMakeFiles/rpqd_plan.dir/plan.cpp.o" "gcc" "src/plan/CMakeFiles/rpqd_plan.dir/plan.cpp.o.d"
  "/root/repo/src/plan/planner.cpp" "src/plan/CMakeFiles/rpqd_plan.dir/planner.cpp.o" "gcc" "src/plan/CMakeFiles/rpqd_plan.dir/planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/rpqd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pgql/CMakeFiles/rpqd_pgql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rpqd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
