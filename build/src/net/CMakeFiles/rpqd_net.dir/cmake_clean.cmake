file(REMOVE_RECURSE
  "CMakeFiles/rpqd_net.dir/flow_control.cpp.o"
  "CMakeFiles/rpqd_net.dir/flow_control.cpp.o.d"
  "CMakeFiles/rpqd_net.dir/network.cpp.o"
  "CMakeFiles/rpqd_net.dir/network.cpp.o.d"
  "librpqd_net.a"
  "librpqd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
