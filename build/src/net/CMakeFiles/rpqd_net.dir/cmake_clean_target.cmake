file(REMOVE_RECURSE
  "librpqd_net.a"
)
