# Empty dependencies file for rpqd_net.
# This may be replaced when dependencies are built.
