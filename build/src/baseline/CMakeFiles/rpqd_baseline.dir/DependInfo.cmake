
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bft.cpp" "src/baseline/CMakeFiles/rpqd_baseline.dir/bft.cpp.o" "gcc" "src/baseline/CMakeFiles/rpqd_baseline.dir/bft.cpp.o.d"
  "/root/repo/src/baseline/eval_util.cpp" "src/baseline/CMakeFiles/rpqd_baseline.dir/eval_util.cpp.o" "gcc" "src/baseline/CMakeFiles/rpqd_baseline.dir/eval_util.cpp.o.d"
  "/root/repo/src/baseline/neo4j_like.cpp" "src/baseline/CMakeFiles/rpqd_baseline.dir/neo4j_like.cpp.o" "gcc" "src/baseline/CMakeFiles/rpqd_baseline.dir/neo4j_like.cpp.o.d"
  "/root/repo/src/baseline/reference.cpp" "src/baseline/CMakeFiles/rpqd_baseline.dir/reference.cpp.o" "gcc" "src/baseline/CMakeFiles/rpqd_baseline.dir/reference.cpp.o.d"
  "/root/repo/src/baseline/relational.cpp" "src/baseline/CMakeFiles/rpqd_baseline.dir/relational.cpp.o" "gcc" "src/baseline/CMakeFiles/rpqd_baseline.dir/relational.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/rpqd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pgql/CMakeFiles/rpqd_pgql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rpqd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
