file(REMOVE_RECURSE
  "CMakeFiles/rpqd_baseline.dir/bft.cpp.o"
  "CMakeFiles/rpqd_baseline.dir/bft.cpp.o.d"
  "CMakeFiles/rpqd_baseline.dir/eval_util.cpp.o"
  "CMakeFiles/rpqd_baseline.dir/eval_util.cpp.o.d"
  "CMakeFiles/rpqd_baseline.dir/neo4j_like.cpp.o"
  "CMakeFiles/rpqd_baseline.dir/neo4j_like.cpp.o.d"
  "CMakeFiles/rpqd_baseline.dir/reference.cpp.o"
  "CMakeFiles/rpqd_baseline.dir/reference.cpp.o.d"
  "CMakeFiles/rpqd_baseline.dir/relational.cpp.o"
  "CMakeFiles/rpqd_baseline.dir/relational.cpp.o.d"
  "librpqd_baseline.a"
  "librpqd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
