file(REMOVE_RECURSE
  "librpqd_baseline.a"
)
