# Empty compiler generated dependencies file for rpqd_baseline.
# This may be replaced when dependencies are built.
