file(REMOVE_RECURSE
  "librpqd_common.a"
)
