file(REMOVE_RECURSE
  "CMakeFiles/rpqd_common.dir/logging.cpp.o"
  "CMakeFiles/rpqd_common.dir/logging.cpp.o.d"
  "CMakeFiles/rpqd_common.dir/rng.cpp.o"
  "CMakeFiles/rpqd_common.dir/rng.cpp.o.d"
  "librpqd_common.a"
  "librpqd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
