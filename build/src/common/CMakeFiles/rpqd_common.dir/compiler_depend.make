# Empty compiler generated dependencies file for rpqd_common.
# This may be replaced when dependencies are built.
