file(REMOVE_RECURSE
  "librpqd_ldbc.a"
)
