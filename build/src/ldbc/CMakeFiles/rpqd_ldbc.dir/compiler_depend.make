# Empty compiler generated dependencies file for rpqd_ldbc.
# This may be replaced when dependencies are built.
