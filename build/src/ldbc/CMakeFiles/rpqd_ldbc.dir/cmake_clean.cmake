file(REMOVE_RECURSE
  "CMakeFiles/rpqd_ldbc.dir/generator.cpp.o"
  "CMakeFiles/rpqd_ldbc.dir/generator.cpp.o.d"
  "CMakeFiles/rpqd_ldbc.dir/synthetic.cpp.o"
  "CMakeFiles/rpqd_ldbc.dir/synthetic.cpp.o.d"
  "librpqd_ldbc.a"
  "librpqd_ldbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_ldbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
