file(REMOVE_RECURSE
  "CMakeFiles/pgql_shell.dir/pgql_shell.cpp.o"
  "CMakeFiles/pgql_shell.dir/pgql_shell.cpp.o.d"
  "pgql_shell"
  "pgql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
