# Empty dependencies file for pgql_shell.
# This may be replaced when dependencies are built.
