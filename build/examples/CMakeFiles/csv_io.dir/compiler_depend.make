# Empty compiler generated dependencies file for csv_io.
# This may be replaced when dependencies are built.
