file(REMOVE_RECURSE
  "CMakeFiles/csv_io.dir/csv_io.cpp.o"
  "CMakeFiles/csv_io.dir/csv_io.cpp.o.d"
  "csv_io"
  "csv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
