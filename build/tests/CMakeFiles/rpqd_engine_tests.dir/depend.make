# Empty dependencies file for rpqd_engine_tests.
# This may be replaced when dependencies are built.
