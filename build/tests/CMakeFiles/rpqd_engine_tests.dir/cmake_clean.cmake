file(REMOVE_RECURSE
  "CMakeFiles/rpqd_engine_tests.dir/aggregate_test.cpp.o"
  "CMakeFiles/rpqd_engine_tests.dir/aggregate_test.cpp.o.d"
  "CMakeFiles/rpqd_engine_tests.dir/baseline_test.cpp.o"
  "CMakeFiles/rpqd_engine_tests.dir/baseline_test.cpp.o.d"
  "CMakeFiles/rpqd_engine_tests.dir/engine_test.cpp.o"
  "CMakeFiles/rpqd_engine_tests.dir/engine_test.cpp.o.d"
  "CMakeFiles/rpqd_engine_tests.dir/features_test.cpp.o"
  "CMakeFiles/rpqd_engine_tests.dir/features_test.cpp.o.d"
  "CMakeFiles/rpqd_engine_tests.dir/semantics_test.cpp.o"
  "CMakeFiles/rpqd_engine_tests.dir/semantics_test.cpp.o.d"
  "CMakeFiles/rpqd_engine_tests.dir/stress_test.cpp.o"
  "CMakeFiles/rpqd_engine_tests.dir/stress_test.cpp.o.d"
  "CMakeFiles/rpqd_engine_tests.dir/workloads_test.cpp.o"
  "CMakeFiles/rpqd_engine_tests.dir/workloads_test.cpp.o.d"
  "rpqd_engine_tests"
  "rpqd_engine_tests.pdb"
  "rpqd_engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
