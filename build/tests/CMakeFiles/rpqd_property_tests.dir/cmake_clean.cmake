file(REMOVE_RECURSE
  "CMakeFiles/rpqd_property_tests.dir/fuzz_test.cpp.o"
  "CMakeFiles/rpqd_property_tests.dir/fuzz_test.cpp.o.d"
  "CMakeFiles/rpqd_property_tests.dir/property_test.cpp.o"
  "CMakeFiles/rpqd_property_tests.dir/property_test.cpp.o.d"
  "rpqd_property_tests"
  "rpqd_property_tests.pdb"
  "rpqd_property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
