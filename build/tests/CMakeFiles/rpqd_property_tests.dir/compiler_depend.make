# Empty compiler generated dependencies file for rpqd_property_tests.
# This may be replaced when dependencies are built.
