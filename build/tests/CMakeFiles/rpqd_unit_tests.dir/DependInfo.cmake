
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/expr_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/expr_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/expr_test.cpp.o.d"
  "/root/repo/tests/flow_control_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/flow_control_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/flow_control_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/ldbc_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/ldbc_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/ldbc_test.cpp.o.d"
  "/root/repo/tests/network_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/network_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/network_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/pgql_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/pgql_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/pgql_test.cpp.o.d"
  "/root/repo/tests/planner_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/planner_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/planner_test.cpp.o.d"
  "/root/repo/tests/reach_index_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/reach_index_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/reach_index_test.cpp.o.d"
  "/root/repo/tests/termination_test.cpp" "tests/CMakeFiles/rpqd_unit_tests.dir/termination_test.cpp.o" "gcc" "tests/CMakeFiles/rpqd_unit_tests.dir/termination_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/rpqd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ldbc/CMakeFiles/rpqd_ldbc.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rpqd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rpqd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/rpqd_api.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/rpqd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/rpqd_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpqd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rpq/CMakeFiles/rpqd_rpq.dir/DependInfo.cmake"
  "/root/repo/build/src/pgql/CMakeFiles/rpqd_pgql.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rpqd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rpqd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
