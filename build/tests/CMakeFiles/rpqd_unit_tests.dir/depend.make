# Empty dependencies file for rpqd_unit_tests.
# This may be replaced when dependencies are built.
