file(REMOVE_RECURSE
  "CMakeFiles/rpqd_unit_tests.dir/common_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/common_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/expr_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/expr_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/flow_control_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/flow_control_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/graph_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/graph_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/io_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/io_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/ldbc_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/ldbc_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/network_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/network_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/partition_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/partition_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/pgql_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/pgql_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/planner_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/planner_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/reach_index_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/reach_index_test.cpp.o.d"
  "CMakeFiles/rpqd_unit_tests.dir/termination_test.cpp.o"
  "CMakeFiles/rpqd_unit_tests.dir/termination_test.cpp.o.d"
  "rpqd_unit_tests"
  "rpqd_unit_tests.pdb"
  "rpqd_unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpqd_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
