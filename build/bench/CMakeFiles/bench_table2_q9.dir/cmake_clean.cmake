file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_q9.dir/bench_table2_q9.cpp.o"
  "CMakeFiles/bench_table2_q9.dir/bench_table2_q9.cpp.o.d"
  "bench_table2_q9"
  "bench_table2_q9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_q9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
