# Empty compiler generated dependencies file for bench_table2_q9.
# This may be replaced when dependencies are built.
