# Empty compiler generated dependencies file for bench_fig3_reach_index.
# This may be replaced when dependencies are built.
