file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_reach_index.dir/bench_fig3_reach_index.cpp.o"
  "CMakeFiles/bench_fig3_reach_index.dir/bench_fig3_reach_index.cpp.o.d"
  "bench_fig3_reach_index"
  "bench_fig3_reach_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_reach_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
