# Empty dependencies file for bench_table3_q10.
# This may be replaced when dependencies are built.
