file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_q10.dir/bench_table3_q10.cpp.o"
  "CMakeFiles/bench_table3_q10.dir/bench_table3_q10.cpp.o.d"
  "bench_table3_q10"
  "bench_table3_q10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_q10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
