file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_messaging.dir/bench_micro_messaging.cpp.o"
  "CMakeFiles/bench_micro_messaging.dir/bench_micro_messaging.cpp.o.d"
  "bench_micro_messaging"
  "bench_micro_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
