# Empty dependencies file for bench_micro_messaging.
# This may be replaced when dependencies are built.
