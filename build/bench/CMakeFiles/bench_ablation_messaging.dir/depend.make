# Empty dependencies file for bench_ablation_messaging.
# This may be replaced when dependencies are built.
