file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_messaging.dir/bench_ablation_messaging.cpp.o"
  "CMakeFiles/bench_ablation_messaging.dir/bench_ablation_messaging.cpp.o.d"
  "bench_ablation_messaging"
  "bench_ablation_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
