file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_systems.dir/bench_fig2_systems.cpp.o"
  "CMakeFiles/bench_fig2_systems.dir/bench_fig2_systems.cpp.o.d"
  "bench_fig2_systems"
  "bench_fig2_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
