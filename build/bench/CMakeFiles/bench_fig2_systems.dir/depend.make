# Empty dependencies file for bench_fig2_systems.
# This may be replaced when dependencies are built.
