
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_dft_vs_bft.cpp" "bench/CMakeFiles/bench_ablation_dft_vs_bft.dir/bench_ablation_dft_vs_bft.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_dft_vs_bft.dir/bench_ablation_dft_vs_bft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/rpqd_api.dir/DependInfo.cmake"
  "/root/repo/build/src/ldbc/CMakeFiles/rpqd_ldbc.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rpqd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rpqd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rpqd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/rpqd_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rpqd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rpq/CMakeFiles/rpqd_rpq.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rpqd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/pgql/CMakeFiles/rpqd_pgql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rpqd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
