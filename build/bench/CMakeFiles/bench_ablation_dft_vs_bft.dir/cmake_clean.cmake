file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dft_vs_bft.dir/bench_ablation_dft_vs_bft.cpp.o"
  "CMakeFiles/bench_ablation_dft_vs_bft.dir/bench_ablation_dft_vs_bft.cpp.o.d"
  "bench_ablation_dft_vs_bft"
  "bench_ablation_dft_vs_bft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dft_vs_bft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
