# Empty dependencies file for bench_ablation_dft_vs_bft.
# This may be replaced when dependencies are built.
