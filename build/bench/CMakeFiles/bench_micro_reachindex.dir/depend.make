# Empty dependencies file for bench_micro_reachindex.
# This may be replaced when dependencies are built.
