file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_reachindex.dir/bench_micro_reachindex.cpp.o"
  "CMakeFiles/bench_micro_reachindex.dir/bench_micro_reachindex.cpp.o.d"
  "bench_micro_reachindex"
  "bench_micro_reachindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_reachindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
