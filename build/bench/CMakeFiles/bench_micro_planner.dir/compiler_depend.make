# Empty compiler generated dependencies file for bench_micro_planner.
# This may be replaced when dependencies are built.
