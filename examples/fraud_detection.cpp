// Fraud-detection scenario — the paper's motivating domain (§1).
//
// Synthesizes a payment network (accounts, merchants, transfer edges with
// amounts) and uses RPQs to answer questions an investigator would ask:
//
//   * which accounts are reachable from a flagged account through chains
//     of large transfers (money-mule detection),
//   * round-tripping: money that leaves an account and returns within a
//     bounded number of hops (layering / cycles),
//   * how deep the flagged account's transfer tree actually goes (the
//     unbounded RPQ with the §3.4 max-depth consensus).
//
//   ./build/examples/fraud_detection [accounts]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/rpqd.h"
#include "common/rng.h"

namespace {

rpqd::Graph make_payment_network(std::size_t accounts, std::uint64_t seed) {
  using namespace rpqd;
  Rng rng(seed);
  GraphBuilder b;
  const PropId amount = b.catalog().property("amount", ValueType::kInt);
  const PropId risk = b.catalog().property("risk", ValueType::kInt);

  std::vector<VertexId> ids;
  for (std::size_t i = 0; i < accounts; ++i) {
    const VertexId v = b.add_vertex("Account");
    b.set_property(v, "id", int_value(static_cast<std::int64_t>(i)));
    b.set_property(v, risk, int_value(rng.next_int(0, 100)));
    ids.push_back(v);
  }
  // A few merchants: sinks with many small incoming payments.
  std::vector<VertexId> merchants;
  for (int i = 0; i < 8; ++i) {
    const VertexId v = b.add_vertex("Merchant");
    b.set_property(v, "id", int_value(1000 + i));
    merchants.push_back(v);
  }
  // Transfers: mostly small; a planted mule chain of large transfers
  // starting at account 0 (0 -> 1 -> 2 -> ... -> 6), plus a cycle.
  const auto transfer = [&](VertexId from, VertexId to, std::int64_t amt) {
    const EdgeId e = b.add_edge(from, to, "transfer");
    b.set_edge_property(e, amount, int_value(amt));
  };
  for (std::size_t i = 0; i < accounts * 4; ++i) {
    const VertexId from = ids[rng.next_below(ids.size())];
    if (rng.next_bool(0.3)) {
      transfer(from, merchants[rng.next_below(merchants.size())],
               rng.next_int(5, 200));
    } else {
      VertexId to = ids[rng.next_below(ids.size())];
      if (to == from) to = ids[(to + 1) % ids.size()];
      transfer(from, to, rng.next_int(5, 900));
    }
  }
  for (int i = 0; i < 6; ++i) {
    transfer(ids[i], ids[i + 1], 9000 + 100 * i);  // the mule chain
  }
  transfer(ids[6], ids[0], 9999);  // layering cycle back to the source
  return std::move(b).build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpqd;
  const std::size_t accounts =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 400;
  Database db(make_payment_network(accounts, /*seed=*/17),
              /*num_machines=*/4);
  std::printf("payment network: %zu vertices, %zu edges on %u machines\n\n",
              db.graph().num_vertices(), db.graph().num_edges(),
              db.num_machines());

  // 1. Money-mule sweep: accounts reachable from the flagged account 0
  //    through chains of transfers that are each >= 5000.
  auto mules = db.query(
      "PATH big AS (s:Account) -[t:transfer]-> (d:Account) "
      "WHERE t.amount >= 5000 "
      "SELECT d.id FROM MATCH (src:Account) -/:big+/-> (d:Account) "
      "WHERE src.id = 0");
  std::printf("accounts reachable from #0 via transfers >= 5000:\n ");
  for (const auto& row : mules.rows) std::printf(" %s", row[0].c_str());
  std::printf("\n  (%llu accounts)\n\n",
              static_cast<unsigned long long>(mules.count));

  // 2. Layering: does money return to the flagged account within 10 hops
  //    of large transfers? (cycle-closing RPQ destination.)
  auto cycles = db.query(
      "PATH big AS (s:Account) -[t:transfer]-> (d:Account) "
      "WHERE t.amount >= 5000 "
      "SELECT COUNT(*) FROM MATCH (src:Account) -/:big{2,10}/-> "
      "(back:Account) WHERE src.id = 0 AND back.id = 0");
  std::printf("large-transfer cycles back to #0: %s\n\n",
              cycles.count > 0 ? "FOUND" : "none");

  // 3. Depth of the whole suspicious spray from #0 (any transfer): the
  //    unbounded RPQ's consensus max depth tells the investigator how
  //    long the longest simple exploration actually was.
  auto spray = db.query(
      "SELECT COUNT(*) FROM MATCH (src:Account) -/:transfer+/-> (d) "
      "WHERE src.id = 0");
  std::printf("accounts/merchants reachable from #0 at any depth: %llu\n",
              static_cast<unsigned long long>(spray.count));
  if (!spray.stats.rpq.empty() &&
      spray.stats.rpq[0].consensus_max_depth.has_value()) {
    std::printf("cluster consensus on max exploration depth: %u\n",
                *spray.stats.rpq[0].consensus_max_depth);
  }
  std::printf("reachability index: %llu entries (%llu bytes)\n",
              static_cast<unsigned long long>(spray.stats.rpq[0].index_entries),
              static_cast<unsigned long long>(spray.stats.rpq[0].index_bytes));
  std::printf("runtime: %s\n", spray.stats.summary().c_str());
  return 0;
}
