// Quickstart: build a small property graph, partition it across a
// simulated 4-machine cluster, and run PGQL queries — fixed patterns,
// variable-length RPQs, and projections.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "api/rpqd.h"

int main() {
  using namespace rpqd;

  // 1. Build a graph: a handful of people who know each other.
  GraphBuilder builder;
  const char* names[] = {"ada", "grace", "alan", "edsger", "barbara", "tony"};
  std::vector<VertexId> people;
  for (int i = 0; i < 6; ++i) {
    const VertexId v = builder.add_vertex("Person");
    builder.set_string_property(v, "name", names[i]);
    builder.set_property(v, "age", int_value(30 + 5 * i));
    people.push_back(v);
  }
  const auto knows = [&](int a, int b) {
    builder.add_edge(people[a], people[b], "knows");
  };
  knows(0, 1);  // ada - grace
  knows(1, 2);  // grace - alan
  knows(2, 3);  // alan - edsger
  knows(3, 4);  // edsger - barbara
  knows(1, 4);  // grace - barbara
  knows(4, 5);  // barbara - tony

  // 2. Open a database over a simulated 4-machine cluster.
  Database db(std::move(builder).build(), /*num_machines=*/4);

  // 3. Fixed pattern: who does grace know (in either direction)?
  auto direct = db.query(
      "SELECT a.name, b.name FROM MATCH (a:Person) -[:knows]- (b:Person) "
      "WHERE a.name = 'grace'");
  std::printf("grace knows directly:\n");
  for (const auto& row : direct.rows) {
    std::printf("  %s - %s\n", row[0].c_str(), row[1].c_str());
  }

  // 4. RPQ: everyone reachable from ada through 1+ knows hops.
  auto reach = db.query(
      "SELECT b.name FROM MATCH (a:Person) -/:knows+/- (b:Person) "
      "WHERE a.name = 'ada'");
  std::printf("\nada reaches via knows+:\n");
  for (const auto& row : reach.rows) {
    std::printf("  %s\n", row[0].c_str());
  }

  // 5. Bounded RPQ with a COUNT aggregate: pairs within 2 hops.
  auto pairs = db.query(
      "SELECT COUNT(*) FROM MATCH (a:Person) -/:knows{1,2}/- (b:Person)");
  std::printf("\npairs within <=2 knows hops: %llu\n",
              static_cast<unsigned long long>(pairs.count));

  // 6. The cross-filter example from the paper's introduction:
  //    chains of acquaintances with ascending age.
  auto ascending = db.query(
      "PATH p AS (pa:Person) -[:knows]- (pb:Person) WHERE pa.age <= pb.age "
      "SELECT COUNT(*) FROM MATCH (p1:Person) -/:p*/-> (p2:Person) "
      "WHERE p1.age <= p2.age");
  std::printf("ascending-age chains: %llu\n",
              static_cast<unsigned long long>(ascending.count));

  // 7. Peek at the engine: plan and runtime statistics.
  std::printf("\nEXPLAIN of the reachability query:\n%s\n",
              db.explain("SELECT COUNT(*) FROM MATCH (a:Person) "
                         "-/:knows+/- (b:Person)")
                  .c_str());
  std::printf("stats of the last query: %s\n",
              ascending.stats.summary().c_str());
  return 0;
}
