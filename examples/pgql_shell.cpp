// Interactive PGQL shell over a synthetic LDBC-like graph: type queries,
// get rows/counts, plans (EXPLAIN <query>), and runtime statistics
// (STATS <query>). Useful for exploring the engine's behaviour by hand.
//
//   ./build/examples/pgql_shell [scale_factor] [machines]
//   rpqd> SELECT COUNT(*) FROM MATCH (a:Person) -/:knows{1,2}/- (b)
//   rpqd> EXPLAIN SELECT COUNT(*) FROM MATCH (p:Post) <-/:replyOf+/- (c)
//   rpqd> \q
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "api/rpqd.h"
#include "ldbc/generator.h"

namespace {

bool starts_with_keyword(const std::string& line, const char* kw,
                         std::string* rest) {
  std::size_t i = 0;
  while (kw[i] != '\0') {
    if (i >= line.size() ||
        std::toupper(static_cast<unsigned char>(line[i])) != kw[i]) {
      return false;
    }
    ++i;
  }
  *rest = line.substr(i);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rpqd;
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = argc > 1 ? std::atof(argv[1]) : 0.2;
  const unsigned machines = argc > 2 ? std::atoi(argv[2]) : 4;

  ldbc::LdbcStats stats;
  Database db(ldbc::generate_ldbc(cfg, &stats), machines);
  std::printf(
      "rpqd shell — LDBC-like graph sf=%.2f (%zu vertices, %zu edges), "
      "%u machines\n"
      "labels: Person Forum Post Comment Tag City Country; edges: knows "
      "replyOf hasModerator containerOf hasCreator isLocatedIn isPartOf "
      "hasTag\n"
      "commands: EXPLAIN <q> | STATS <q> (incl. per-stage table) | \\q\n",
      cfg.scale_factor, stats.total_vertices, stats.total_edges, machines);

  std::string line;
  while (true) {
    std::printf("rpqd> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\q" || line == "quit" || line == "exit") break;
    try {
      std::string rest;
      if (starts_with_keyword(line, "EXPLAIN ", &rest)) {
        std::printf("%s", db.explain(rest).c_str());
        continue;
      }
      const bool want_stats = starts_with_keyword(line, "STATS ", &rest);
      const auto result = db.query(want_stats ? rest : line);
      if (result.columns.empty()) {
        std::printf("count: %llu\n",
                    static_cast<unsigned long long>(result.count));
      } else {
        for (const auto& name : result.columns) {
          std::printf("%s\t", name.c_str());
        }
        std::printf("\n");
        const std::size_t shown = std::min<std::size_t>(result.rows.size(), 25);
        for (std::size_t i = 0; i < shown; ++i) {
          for (const auto& cell : result.rows[i]) {
            std::printf("%s\t", cell.c_str());
          }
          std::printf("\n");
        }
        if (shown < result.rows.size()) {
          std::printf("... (%zu rows total)\n", result.rows.size());
        }
      }
      if (want_stats) {
        std::printf("%s\n%s", result.stats.summary().c_str(),
                    result.stats.stage_table().c_str());
      }
    } catch (const Error& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
