// Social-network analytics on the synthetic LDBC-like graph: the
// workload family of the paper's evaluation (§4). Runs reply-tree and
// friend-neighbourhood RPQs and prints the per-depth statistics the
// paper reports in Tables 2 and 3.
//
//   ./build/examples/social_network [scale_factor] [machines]
#include <cstdio>
#include <cstdlib>

#include "api/rpqd.h"
#include "ldbc/generator.h"

int main(int argc, char** argv) {
  using namespace rpqd;
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = argc > 1 ? std::atof(argv[1]) : 0.5;
  const unsigned machines = argc > 2 ? std::atoi(argv[2]) : 4;

  ldbc::LdbcStats stats;
  Graph graph = ldbc::generate_ldbc(cfg, &stats);
  std::printf(
      "LDBC-like graph sf=%.2f: %zu vertices, %zu edges "
      "(%zu persons, %zu posts, %zu comments, %zu knows)\n\n",
      cfg.scale_factor, stats.total_vertices, stats.total_edges,
      stats.persons, stats.posts, stats.comments, stats.knows_edges);

  Database db(std::move(graph), machines);

  // Q9-style: recursively all replies to posts (a tree workload).
  auto replies = db.query(
      "SELECT COUNT(*) FROM MATCH (post:Post) <-/:replyOf+/- (c:Comment)");
  std::printf("replies to posts at any depth: %llu\n",
              static_cast<unsigned long long>(replies.count));
  std::printf("  per-depth matches of the RPQ control stage (Table 2 "
              "style):\n  depth:   ");
  const auto& depths = replies.stats.rpq[0].matches_per_depth;
  for (std::size_t d = 0; d < depths.size(); ++d) {
    std::printf("%8zu", d);
  }
  std::printf("\n  matches: ");
  for (const auto m : depths) {
    std::printf("%8llu", static_cast<unsigned long long>(m));
  }
  std::printf("\n\n");

  // Q10-style: persons within 2-3 Knows hops of one person (heavy
  // reachability-index traffic).
  auto friends = db.query(
      "SELECT COUNT(*) FROM MATCH (p1:Person) -/:knows{2,3}/- (p2:Person) "
      "WHERE p1.id = 7");
  std::printf("persons within 2-3 knows hops of person 7: %llu\n",
              static_cast<unsigned long long>(friends.count));
  const auto& f = friends.stats.rpq[0];
  std::printf("  depth | matches | eliminated | duplicated   (Table 3 "
              "style)\n");
  for (std::size_t d = 0; d < f.matches_per_depth.size(); ++d) {
    const auto at = [&](const std::vector<std::uint64_t>& v) {
      return d < v.size() ? v[d] : 0;
    };
    std::printf("  %5zu | %7llu | %10llu | %10llu\n", d,
                static_cast<unsigned long long>(at(f.matches_per_depth)),
                static_cast<unsigned long long>(at(f.eliminated_per_depth)),
                static_cast<unsigned long long>(at(f.duplicated_per_depth)));
  }
  std::printf("  reachability index: %llu entries, %llu bytes\n\n",
              static_cast<unsigned long long>(f.index_entries),
              static_cast<unsigned long long>(f.index_bytes));

  // Who moderates the busiest reply trees in Burma? Distributed GROUP BY
  // aggregation: one row per moderator with their message count.
  auto moderators = db.query(
      "SELECT p.name, COUNT(*) FROM MATCH (country:Country) "
      "<-[:isPartOf]- (city:City) <-[:isLocatedIn]- (p:Person) "
      "<-[:hasModerator]- (f:Forum) -[:containerOf]-> (post:Post) "
      "<-/:replyOf*/- (msg) WHERE country.name = 'Burma' "
      "GROUP BY p.name");
  std::printf("messages per Burmese moderator (%zu moderators):\n",
              moderators.rows.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, moderators.rows.size());
       ++i) {
    std::printf("  %-16s %s\n", moderators.rows[i][0].c_str(),
                moderators.rows[i][1].c_str());
  }
  std::printf("engine stats: %s\n", moderators.stats.summary().c_str());
  return 0;
}
