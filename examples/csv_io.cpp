// Data pipeline example: load a property graph from LDBC-style CSV,
// query it, extend it with a materialized reachability label, and save a
// binary snapshot for fast reloads.
//
//   ./build/examples/csv_io [workdir]
#include <cstdio>
#include <fstream>
#include <string>

#include "api/reach_graph.h"
#include "api/rpqd.h"
#include "io/binary.h"
#include "io/csv.h"

int main(int argc, char** argv) {
  using namespace rpqd;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";

  // 1. Write a small CSV dataset (normally this comes from your ETL).
  const std::string vpath = dir + "/rpqd_example_vertices.csv";
  const std::string epath = dir + "/rpqd_example_edges.csv";
  {
    std::ofstream v(vpath);
    v << "0|Person|name:string=ada|age:int=36\n"
         "1|Person|name:string=grace|age:int=36\n"
         "2|Person|name:string=alan|age:int=41\n"
         "3|Person|name:string=edsger|age:int=52\n"
         "4|City|name:string=london\n";
    std::ofstream e(epath);
    e << "0|1|knows|since:int=1843\n"
         "1|2|knows|since:int=1936\n"
         "2|3|knows|since:int=1950\n"
         "0|4|livesIn\n"
         "2|4|livesIn\n";
  }

  // 2. Load and query.
  Database db(io::load_csv_files(vpath, epath), /*num_machines=*/2);
  std::printf("loaded %zu vertices, %zu edges from CSV\n",
              db.graph().num_vertices(), db.graph().num_edges());
  auto reach = db.query(
      "SELECT b.name FROM MATCH (a:Person) -/:knows+/- (b:Person) "
      "WHERE a.name = 'ada'");
  std::printf("ada reaches:");
  for (const auto& row : reach.rows) std::printf(" %s", row[0].c_str());
  std::printf("\n");

  // 3. Materialize the 2-hop knows relation as its own edge label and
  //    aggregate over it.
  Graph extended = materialize_reachability(
      db, "SELECT id(a), id(b) FROM MATCH (a:Person) -/:knows{2}/- "
          "(b:Person)", "knows2");
  Database db2(std::move(extended), 2);
  auto counts = db2.query(
      "SELECT a.name, COUNT(*) FROM MATCH (a:Person) -[:knows2]-> (b)");
  std::printf("2-hop acquaintance counts:\n");
  for (const auto& row : counts.rows) {
    std::printf("  %-10s %s\n", row[0].c_str(), row[1].c_str());
  }

  // 4. Save a binary snapshot and reload it.
  const std::string snapshot = dir + "/rpqd_example.bin";
  io::save_binary_file(db2.graph(), snapshot);
  Database db3(io::load_binary_file(snapshot), 2);
  std::printf("binary snapshot round-trip: %zu vertices, %zu edges\n",
              db3.graph().num_vertices(), db3.graph().num_edges());
  return 0;
}
